//! The JSON-lines wire protocol of the prediction service.
//!
//! Every request and every response is exactly one JSON object on one
//! line, terminated by `\n` — trivially streamable over TCP, a pipe,
//! or a transcript file. Requests are tagged by an `"op"` field,
//! responses by an `"ok"` field (or an `"error"` object):
//!
//! ```text
//! → {"op":"predict","device":"titan-x","source":"__kernel void ..."}
//! ← {"ok":"predict","device":"titan-x","prediction":{...}}
//! → {"op":"devices"}
//! ← {"ok":"devices","devices":[{"id":"titan-x",...}]}
//! → {"op":"nonsense"}
//! ← {"error":{"code":"bad_request","message":"unknown op `nonsense`"}}
//! ```
//!
//! The (de)serialization is hand-written against the vendored
//! mini-serde [`Value`] tree so the wire format uses
//! protocol-style snake_case tags (not Rust variant names) and stays
//! pinned independently of the Rust types; `tests/protocol_roundtrip.rs`
//! round-trips every variant.
//!
//! Malformed input is always answered with a typed
//! [`ErrorBody`] response — never a dropped connection.

use gpufreq_core::ParetoPrediction;
use gpufreq_sim::Device;
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A client request, tagged on the wire by `"op"`.
///
/// Device ids travel as strings and are resolved by the server, so an
/// unknown id is a typed [`ErrorCode::UnknownDevice`] response rather
/// than a parse failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Predict the Pareto front for one kernel source on one device.
    Predict {
        /// Registry id of the target device (e.g. `titan-x`).
        device: String,
        /// OpenCL-C kernel source text.
        source: String,
    },
    /// Predict for a whole batch of sources on one device; slot `i` of
    /// the response corresponds to `sources[i]`.
    PredictBatch {
        /// Registry id of the target device.
        device: String,
        /// Kernel sources, answered in order.
        sources: Vec<String>,
    },
    /// List the devices this server is holding models for.
    Devices,
    /// Snapshot the server's request/cache/queue/latency metrics.
    Stats,
    /// Render the Prometheus-style text exposition (the same document
    /// `GET /metrics` serves), wrapped in a JSON response.
    Metrics,
    /// Hot-swap one device's model from a persisted
    /// `ModelArtifact` path without dropping connections (admin
    /// control-plane; in-flight requests finish on the old model).
    Reload {
        /// Registry id of the device whose model is replaced.
        device: String,
        /// Server-local filesystem path of the artifact JSON.
        path: String,
    },
    /// Stop accepting work, drain the queue, and exit cleanly.
    Shutdown,
}

impl Request {
    /// Convenience constructor for a single-kernel prediction.
    pub fn predict(device: Device, source: impl Into<String>) -> Request {
        Request::Predict {
            device: device.id().to_string(),
            source: source.into(),
        }
    }

    /// Convenience constructor for a batch prediction.
    pub fn predict_batch(device: Device, sources: Vec<String>) -> Request {
        Request::PredictBatch {
            device: device.id().to_string(),
            sources,
        }
    }

    /// The wire tag of this request (`"predict"`, `"stats"`, ...).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Predict { .. } => "predict",
            Request::PredictBatch { .. } => "predict_batch",
            Request::Devices => "devices",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Reload { .. } => "reload",
            Request::Shutdown => "shutdown",
        }
    }

    /// Serialize to one compact JSON line (without the trailing `\n`).
    pub fn to_json(&self) -> String {
        // analyze:allow(panic-in-request-path, reason = "requests are enums of strings; serializing them cannot fail")
        serde_json::to_string(self).expect("request serialization is infallible")
    }

    /// Parse one line. Any failure — invalid JSON, a non-object, a
    /// missing or unknown `"op"`, wrong field types — is returned as
    /// the [`ErrorBody`] the server answers with.
    pub fn parse(line: &str) -> Result<Request, ErrorBody> {
        serde_json::from_str(line)
            .map_err(|e| ErrorBody::new(ErrorCode::BadRequest, format!("bad request: {e}")))
    }
}

impl Serialize for Request {
    fn serialize(&self) -> Value {
        let mut entries = vec![op_entry("op", self.op())];
        match self {
            Request::Predict { device, source } => {
                entries.push(("device".into(), device.serialize()));
                entries.push(("source".into(), source.serialize()));
            }
            Request::PredictBatch { device, sources } => {
                entries.push(("device".into(), device.serialize()));
                entries.push(("sources".into(), sources.serialize()));
            }
            Request::Reload { device, path } => {
                entries.push(("device".into(), device.serialize()));
                entries.push(("path".into(), path.serialize()));
            }
            Request::Devices | Request::Stats | Request::Metrics | Request::Shutdown => {}
        }
        Value::Object(entries)
    }
}

impl Deserialize for Request {
    fn deserialize(v: &Value) -> Result<Request, serde::Error> {
        let entries = serde::expect_object(v, "Request")?;
        let op: String = serde::field(entries, "op", "Request")?;
        match op.as_str() {
            "predict" => Ok(Request::Predict {
                device: serde::field(entries, "device", "predict")?,
                source: serde::field(entries, "source", "predict")?,
            }),
            "predict_batch" => Ok(Request::PredictBatch {
                device: serde::field(entries, "device", "predict_batch")?,
                sources: serde::field(entries, "sources", "predict_batch")?,
            }),
            "devices" => Ok(Request::Devices),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "reload" => Ok(Request::Reload {
                device: serde::field(entries, "device", "reload")?,
                path: serde::field(entries, "path", "reload")?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(serde::Error::custom(format!("unknown op `{other}`"))),
        }
    }
}

/// A server response, tagged on the wire by `"ok"` — or an `"error"`
/// object when the request could not be served.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Predict`].
    Predict {
        /// The resolved device the prediction is for.
        device: Device,
        /// The predicted Pareto front.
        prediction: ParetoPrediction,
    },
    /// Answer to [`Request::PredictBatch`]; slot `i` answers
    /// `sources[i]`, with per-kernel errors staying in their slot.
    PredictBatch {
        /// The resolved device the predictions are for.
        device: Device,
        /// One result per requested source, in request order.
        results: Vec<BatchResult>,
    },
    /// Answer to [`Request::Devices`].
    Devices {
        /// The devices this server holds trained models for.
        devices: Vec<DeviceInfo>,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// The metrics snapshot (boxed: the snapshot is by far the
        /// largest variant, and responses are moved around by value).
        stats: Box<ServerStats>,
    },
    /// Answer to [`Request::Metrics`]: the Prometheus-style text
    /// exposition, verbatim (the same bytes `GET /metrics` serves).
    Metrics {
        /// The exposition document (multi-line text, JSON-escaped on
        /// the wire).
        exposition: String,
    },
    /// Answer to [`Request::Reload`]: the swap happened; `version`
    /// counts swaps per device slot (1 = the model the server started
    /// with).
    Reload {
        /// The device whose model was replaced.
        device: Device,
        /// Slot version now serving (monotonic per device).
        version: u64,
    },
    /// Answer to [`Request::Shutdown`]: the server acknowledges, then
    /// drains and exits.
    Shutdown,
    /// The request could not be served at all.
    Error {
        /// What went wrong, typed.
        error: ErrorBody,
    },
}

impl Response {
    /// Serialize to one compact JSON line (without the trailing `\n`).
    pub fn to_json(&self) -> String {
        // analyze:allow(panic-in-request-path, reason = "responses are built from plain strings and numbers; serializing them cannot fail")
        serde_json::to_string(self).expect("response serialization is infallible")
    }

    /// Parse one line of server output.
    pub fn parse(line: &str) -> Result<Response, serde_json::Error> {
        serde_json::from_str(line)
    }

    /// The error body, if this is an error response.
    pub fn error(&self) -> Option<&ErrorBody> {
        match self {
            Response::Error { error } => Some(error),
            _ => None,
        }
    }
}

impl Serialize for Response {
    fn serialize(&self) -> Value {
        match self {
            Response::Predict { device, prediction } => Value::Object(vec![
                op_entry("ok", "predict"),
                ("device".into(), device.serialize()),
                ("prediction".into(), prediction.serialize()),
            ]),
            Response::PredictBatch { device, results } => Value::Object(vec![
                op_entry("ok", "predict_batch"),
                ("device".into(), device.serialize()),
                ("results".into(), results.serialize()),
            ]),
            Response::Devices { devices } => Value::Object(vec![
                op_entry("ok", "devices"),
                ("devices".into(), devices.serialize()),
            ]),
            Response::Stats { stats } => Value::Object(vec![
                op_entry("ok", "stats"),
                ("stats".into(), stats.serialize()),
            ]),
            Response::Metrics { exposition } => Value::Object(vec![
                op_entry("ok", "metrics"),
                ("exposition".into(), exposition.serialize()),
            ]),
            Response::Reload { device, version } => Value::Object(vec![
                op_entry("ok", "reload"),
                ("device".into(), device.serialize()),
                ("version".into(), version.serialize()),
            ]),
            Response::Shutdown => Value::Object(vec![op_entry("ok", "shutdown")]),
            Response::Error { error } => Value::Object(vec![("error".into(), error.serialize())]),
        }
    }
}

impl Deserialize for Response {
    fn deserialize(v: &Value) -> Result<Response, serde::Error> {
        let entries = serde::expect_object(v, "Response")?;
        if entries.iter().any(|(k, _)| k == "error") {
            return Ok(Response::Error {
                error: serde::field(entries, "error", "Response")?,
            });
        }
        let ok: String = serde::field(entries, "ok", "Response")?;
        match ok.as_str() {
            "predict" => Ok(Response::Predict {
                device: serde::field(entries, "device", "predict")?,
                prediction: serde::field(entries, "prediction", "predict")?,
            }),
            "predict_batch" => Ok(Response::PredictBatch {
                device: serde::field(entries, "device", "predict_batch")?,
                results: serde::field(entries, "results", "predict_batch")?,
            }),
            "devices" => Ok(Response::Devices {
                devices: serde::field(entries, "devices", "devices")?,
            }),
            "stats" => Ok(Response::Stats {
                stats: Box::new(serde::field(entries, "stats", "stats")?),
            }),
            "metrics" => Ok(Response::Metrics {
                exposition: serde::field(entries, "exposition", "metrics")?,
            }),
            "reload" => Ok(Response::Reload {
                device: serde::field(entries, "device", "reload")?,
                version: serde::field(entries, "version", "reload")?,
            }),
            "shutdown" => Ok(Response::Shutdown),
            other => Err(serde::Error::custom(format!(
                "unknown response tag `{other}`"
            ))),
        }
    }
}

fn op_entry(key: &str, tag: &str) -> (String, Value) {
    (key.to_string(), Value::String(tag.to_string()))
}

/// One slot of a [`Response::PredictBatch`]: either a prediction or a
/// per-kernel typed error, mirroring
/// `TrainedPlanner::predict_batch`'s slot contract.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchResult {
    /// The kernel analyzed and predicted successfully.
    Ok(ParetoPrediction),
    /// The kernel failed (malformed source, analysis error) without
    /// disturbing its neighbours.
    Err(ErrorBody),
}

impl BatchResult {
    /// The prediction, if this slot succeeded.
    pub fn prediction(&self) -> Option<&ParetoPrediction> {
        match self {
            BatchResult::Ok(p) => Some(p),
            BatchResult::Err(_) => None,
        }
    }
}

impl Serialize for BatchResult {
    fn serialize(&self) -> Value {
        match self {
            BatchResult::Ok(p) => Value::Object(vec![("prediction".into(), p.serialize())]),
            BatchResult::Err(e) => Value::Object(vec![("error".into(), e.serialize())]),
        }
    }
}

impl Deserialize for BatchResult {
    fn deserialize(v: &Value) -> Result<BatchResult, serde::Error> {
        let entries = serde::expect_object(v, "BatchResult")?;
        if entries.iter().any(|(k, _)| k == "error") {
            return Ok(BatchResult::Err(serde::field(
                entries,
                "error",
                "BatchResult",
            )?));
        }
        Ok(BatchResult::Ok(serde::field(
            entries,
            "prediction",
            "BatchResult",
        )?))
    }
}

/// One served device, as listed by [`Response::Devices`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceInfo {
    /// Stable registry id (`titan-x`, ...).
    pub id: String,
    /// Marketing name (`GTX Titan X`, ...).
    pub name: String,
    /// Number of supported memory domains.
    pub memory_domains: usize,
    /// Number of actual `(mem, core)` configurations.
    pub configurations: usize,
}

/// Machine-readable error category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not a valid request (bad JSON, unknown op, wrong
    /// field types).
    BadRequest,
    /// The device id names no registered device.
    UnknownDevice,
    /// The device is registered but this server holds no model for it.
    DeviceNotServed,
    /// The kernel source failed to parse or analyze.
    Kernel,
    /// The bounded request queue is full — explicit backpressure;
    /// retry later.
    Overloaded,
    /// The server is draining after a `shutdown` request.
    ShuttingDown,
    /// A model hot-reload failed (unreadable artifact, wrong device);
    /// the previous model keeps serving.
    ReloadFailed,
    /// Any other server-side failure.
    Internal,
}

impl ErrorCode {
    /// The stable wire spelling of this code.
    pub const fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownDevice => "unknown_device",
            ErrorCode::DeviceNotServed => "device_not_served",
            ErrorCode::Kernel => "kernel",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::ReloadFailed => "reload_failed",
            ErrorCode::Internal => "internal",
        }
    }

    /// Every code, for exhaustive round-trip tests.
    pub const ALL: [ErrorCode; 8] = [
        ErrorCode::BadRequest,
        ErrorCode::UnknownDevice,
        ErrorCode::DeviceNotServed,
        ErrorCode::Kernel,
        ErrorCode::Overloaded,
        ErrorCode::ShuttingDown,
        ErrorCode::ReloadFailed,
        ErrorCode::Internal,
    ];
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for ErrorCode {
    fn serialize(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl Deserialize for ErrorCode {
    fn deserialize(v: &Value) -> Result<ErrorCode, serde::Error> {
        let s = String::deserialize(v)?;
        ErrorCode::ALL
            .into_iter()
            .find(|c| c.as_str() == s)
            .ok_or_else(|| serde::Error::custom(format!("unknown error code `{s}`")))
    }
}

/// A typed error answer: a stable machine-readable code plus a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Stable category for programmatic handling.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorBody {
    /// Build an error body.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ErrorBody {
        ErrorBody {
            code,
            message: message.into(),
        }
    }

    /// The error as a full [`Response`] line.
    pub fn into_response(self) -> Response {
        Response::Error { error: self }
    }

    /// The canonical `unknown_device` body for a device id that names
    /// no registered device. Shared by the daemon and the router so a
    /// router answering for an unserved shard is byte-identical to a
    /// single backend.
    pub fn unknown_device(error: &gpufreq_sim::UnknownDevice) -> ErrorBody {
        ErrorBody::new(ErrorCode::UnknownDevice, format!("{error}"))
    }

    /// The canonical `device_not_served` body for a registered device
    /// this process holds no model (or backend) for. `serving` is the
    /// served set in planner order.
    pub fn device_not_served(device: Device, serving: &[Device]) -> ErrorBody {
        ErrorBody::new(
            ErrorCode::DeviceNotServed,
            format!(
                "no model loaded for `{device}` (serving: {})",
                serving
                    .iter()
                    .map(|d| d.id())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        )
    }
}

impl fmt::Display for ErrorBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// Snapshot of the server's aggregate metrics
/// ([`Response::Stats`]). Every field is monotonically increasing
/// except the gauges (`queue.depth`, cache `len`s).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Request counters by kind.
    pub requests: RequestCounts,
    /// The response front cache keyed by `(device, source-hash)`.
    pub front_cache: CacheStats,
    /// The shared kernel-analysis cache underneath the planners.
    pub analysis_cache: CacheStats,
    /// The bounded request queue feeding the worker pool.
    pub queue: QueueStats,
    /// Number of worker threads.
    pub workers: usize,
    /// Serving-latency histogram summary, in microseconds.
    pub latency_us: LatencyStats,
    /// Connection lifecycle counters (TCP + HTTP listeners).
    pub connections: ConnectionStats,
    /// Process identity: uptime, build revision, and the artifact
    /// version serving in each device slot. Appended last so older
    /// clients that stop reading early keep parsing.
    pub server: ServerInfo,
}

/// Process identity and model provenance, surfaced in `stats` and
/// `/healthz` so an operator can tell at a glance which build is
/// running, for how long, and which artifact version each device slot
/// is serving.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerInfo {
    /// Whole seconds since the server started (monotonic clock).
    pub uptime_s: u64,
    /// Build revision baked in at compile time via the
    /// `GPUFREQ_BUILD_REV` env var; empty for local builds.
    pub build: String,
    /// One entry per served device slot, in planner order. A router
    /// reports the concatenation of its backends' slots.
    pub slots: Vec<SlotInfo>,
}

/// The artifact version serving in one device slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotInfo {
    /// Registry id of the device.
    pub device: String,
    /// Slot version now serving (1 = the model the server started
    /// with; bumped by each successful `reload`).
    pub version: u64,
}

/// Request counters by kind; `total` counts every protocol line seen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestCounts {
    /// Every request line received (including malformed ones).
    pub total: u64,
    /// `predict` requests.
    pub predict: u64,
    /// `predict_batch` requests.
    pub predict_batch: u64,
    /// Individual kernels inside batch requests.
    pub batch_kernels: u64,
    /// `devices` requests.
    pub devices: u64,
    /// `stats` requests.
    pub stats: u64,
    /// `shutdown` requests.
    pub shutdown: u64,
    /// Requests answered with an error response (any code except
    /// `overloaded`).
    pub errors: u64,
    /// Requests rejected with `overloaded` — queue-full backpressure
    /// plus both admission-control causes broken out below.
    pub rejected: u64,
    /// `reload` requests (admin model hot-swaps).
    pub reload: u64,
    /// Of `rejected`: shed because the windowed p99 crossed the
    /// configured latency target.
    pub rejected_p99: u64,
    /// Of `rejected`: shed because the client exhausted its per-peer
    /// token-bucket quota.
    pub rejected_quota: u64,
    /// `metrics` requests (the exposition verb).
    pub metrics: u64,
}

/// Hit/miss/eviction counters plus the current-size gauge of one
/// bounded cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Maximum entries (`0` = this cache is disabled or unbounded —
    /// see `gpufreq_serve::ServerConfig`).
    pub capacity: usize,
}

/// Connection lifecycle counters across both listeners. `active` is a
/// gauge (`opened - closed`); everything else is monotonic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectionStats {
    /// Connections accepted and handed to a connection thread.
    pub opened: u64,
    /// Connections whose thread has exited (any reason).
    pub closed: u64,
    /// Connections refused at the concurrent-connection cap with a
    /// typed `overloaded` line (they are never `opened`).
    pub refused: u64,
    /// Accepted connections dropped because socket setup
    /// (`try_clone`/`set_read_timeout`) failed.
    pub failed: u64,
    /// Connections currently being served (`opened - closed`).
    pub active: u64,
}

/// Depth/capacity of the bounded request queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Jobs currently waiting for a worker.
    pub depth: usize,
    /// Maximum queued jobs before requests are rejected with
    /// `overloaded`.
    pub capacity: usize,
}

/// Latency histogram summary. Quantiles are upper bounds of
/// power-of-two buckets (see `gpufreq_serve::metrics`), so they are
/// conservative approximations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Observations recorded.
    pub count: u64,
    /// Median serving latency (µs, bucket upper bound).
    pub p50: u64,
    /// 95th-percentile serving latency (µs, bucket upper bound).
    pub p95: u64,
    /// 99th-percentile serving latency (µs, bucket upper bound).
    pub p99: u64,
    /// Largest single observation (µs, exact).
    pub max: u64,
}
