//! `gpufreq-serve` — the request-path side of the reproduction: a
//! long-running, multi-threaded prediction daemon for the paper's
//! deployment story (per-kernel DVFS decisions made online, "at the
//! driver level from static code alone", §4.5–§4.6 — a serving
//! problem, not a batch one).
//!
//! A [`Server`] loads one [`TrainedPlanner`](gpufreq_core::TrainedPlanner)
//! per served device and answers a JSON-lines protocol
//! ([`protocol`]) over TCP ([`Server::serve`]) or any byte stream —
//! stdin/stdout, a pipe, a recorded transcript
//! ([`Server::serve_lines`]). Internally it owns:
//!
//! * a **worker pool** fed by a [`BoundedQueue`](queue::BoundedQueue)
//!   with explicit backpressure — a full queue answers a typed
//!   `overloaded` error immediately, it never blocks the acceptor;
//! * a **sharded, capacity-bounded front cache**
//!   ([`cache::FrontCache`]) keyed by `(device, source-hash)`, so a
//!   repeated kernel skips parsing, analysis *and* the
//!   full-configuration SVR scan and replays byte-identical response
//!   bytes;
//! * **metrics** ([`metrics::Metrics`]): request counters, cache hit
//!   rates, queue depth, and a latency histogram with p50/p95/p99,
//!   surfaced by the `stats` request and the final shutdown summary;
//! * **deterministic responses**: the same request stream produces
//!   byte-identical response bodies at any worker count (see
//!   [`server`]'s module docs; pinned by `tests/determinism.rs`).
//!
//! ```no_run
//! use gpufreq_core::{Corpus, Planner};
//! use gpufreq_serve::{Server, ServerConfig};
//! use std::net::TcpListener;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let planners = Planner::builder().corpus(Corpus::Full).train_all_devices()?;
//! let server = Server::new(planners, ServerConfig::default())?;
//! let listener = TcpListener::bind("127.0.0.1:7071")?;
//! let summary = server.serve(listener)?; // blocks until a `shutdown` request
//! println!("served {} requests", summary.requests.total);
//! # Ok(())
//! # }
//! ```
//!
//! Since PR 8 the daemon is a full gateway: an optional **HTTP/1.1
//! listener** ([`http`]) shares the same server core
//! ([`Server::serve_with_http`]), a **connection cap** refuses (with a
//! typed error) rather than spawning unboundedly, **admission
//! control** ([`admission`]) sheds predict load when the rolling p99
//! crosses a target or a client exhausts its per-IP quota, and models
//! **hot-reload** ([`reload`]) per device without dropping
//! connections.
//!
//! The CLI front ends are `gpufreq serve` / `gpufreq client`; the load
//! generator is the `loadgen` binary of `gpufreq-bench`.

#![deny(missing_docs)]

pub mod admission;
pub mod cache;
pub mod codec;
pub mod http;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod reload;
pub mod server;

pub use admission::{AdmissionConfig, Quota};
pub use codec::{LineClient, TraceEntry};
pub use protocol::{
    BatchResult, ConnectionStats, DeviceInfo, ErrorBody, ErrorCode, LatencyStats, Request,
    Response, ServerInfo, ServerStats, SlotInfo,
};
pub use reload::PlannerSlot;
pub use server::{build_rev, render_stats_table, ServeError, Server, ServerConfig, STAGE_NAMES};
