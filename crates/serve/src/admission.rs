//! Admission control: windowed-p99 backpressure and per-client quotas.
//!
//! Two independent, individually optional gates run before a predict
//! request is enqueued:
//!
//! * **Windowed p99** — the server already maintains a cumulative
//!   latency histogram ([`Metrics`]); the controller keeps a *base*
//!   snapshot of its bucket counts and computes the p99 of the **delta**
//!   (requests observed since the base). Once the window holds
//!   `WINDOW_SPAN` observations the base slides forward, so the p99
//!   tracks recent load instead of the whole process lifetime. When the
//!   rolling p99 exceeds the configured target, new predict work is
//!   refused with the usual typed `overloaded` error — shedding load is
//!   exactly what keeps the tail from compounding.
//! * **Per-client token buckets** — keyed by peer IP address, refilled
//!   at `rate_per_sec` up to `burst`. A client past its quota is
//!   refused without affecting anyone else.
//!
//! Both gates apply only to prediction work arriving over a socket
//! (`peer` is `Some`); control-plane requests (`stats`, `devices`,
//! `shutdown`, `reload`) and the in-process replay path (`peer` =
//! `None`, used by the determinism tests) are always admitted — an
//! overloaded server must stay observable and drainable, and replays
//! must stay byte-identical.

use crate::metrics::{quantile_from_counts, Metrics};
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Observations after which the p99 window's base snapshot slides
/// forward (i.e. the rolling window covers at most this many requests).
pub(crate) const WINDOW_SPAN: u64 = 1024;

/// Minimum observations in the current window before the p99 gate acts
/// — a handful of requests is noise, not a tail.
pub(crate) const MIN_WINDOW: u64 = 64;

/// Token-bucket maps larger than this are swept of idle (full) buckets.
const MAX_TRACKED_CLIENTS: usize = 4096;

/// A per-client rate limit: sustained `rate_per_sec` with `burst`
/// headroom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quota {
    /// Sustained admissions per second per client IP.
    pub rate_per_sec: u32,
    /// Bucket depth: how many requests a quiet client may burst.
    pub burst: u32,
}

/// Which admission gates are active. The default (both off) admits
/// everything, preserving the pre-gateway behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionConfig {
    /// Refuse predict work while the rolling p99 exceeds this (µs).
    pub p99_target_us: Option<u64>,
    /// Per-client token-bucket quota keyed by peer IP.
    pub quota: Option<Quota>,
}

/// Why a request was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The rolling p99 is above the configured target.
    P99,
    /// The client exhausted its token bucket.
    Quota,
}

#[derive(Debug, Default)]
struct Window {
    /// Histogram bucket counts at the start of the current window.
    base: Vec<u64>,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// The admission controller shared by every connection thread.
#[derive(Debug)]
pub struct Admission {
    config: AdmissionConfig,
    window: Mutex<Window>,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

impl Admission {
    /// A controller enforcing `config`.
    pub fn new(config: AdmissionConfig) -> Admission {
        Admission {
            config,
            window: Mutex::new(Window::default()),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Decide whether a predict request from `peer` may be enqueued.
    /// `None` admits; `Some(rejection)` names the gate that refused.
    /// Requests without a peer (in-process replay) are always admitted.
    pub fn admit(&self, peer: Option<IpAddr>, metrics: &Metrics) -> Option<Rejection> {
        let peer = peer?;
        if let Some(quota) = self.config.quota {
            if !self.take_token(peer, quota, Instant::now()) {
                return Some(Rejection::Quota);
            }
        }
        if let Some(target_us) = self.config.p99_target_us {
            if let Some(p99) = self.windowed_p99(&metrics.latency_bucket_counts()) {
                if p99 > target_us {
                    return Some(Rejection::P99);
                }
            }
        }
        None
    }

    /// The p99 (µs, bucket upper bound) over requests observed since the
    /// window base, or `None` while the window is too small to judge.
    /// Slides the base once the window reaches [`WINDOW_SPAN`].
    fn windowed_p99(&self, current: &[u64]) -> Option<u64> {
        let mut window = lock(&self.window);
        if window.base.len() != current.len() {
            // First observation (or a snapshot-shape change in tests):
            // start the window here.
            window.base = current.to_vec();
            return None;
        }
        let delta: Vec<u64> = current
            .iter()
            .zip(&window.base)
            .map(|(c, b)| c.saturating_sub(*b))
            .collect();
        let n: u64 = delta.iter().sum();
        if n >= WINDOW_SPAN {
            window.base = current.to_vec();
        }
        drop(window);
        if n < MIN_WINDOW {
            return None;
        }
        Some(quantile_from_counts(&delta, 0.99))
    }

    /// Refill `peer`'s bucket to `now` and try to take one token.
    fn take_token(&self, peer: IpAddr, quota: Quota, now: Instant) -> bool {
        let rate = f64::from(quota.rate_per_sec);
        let burst = f64::from(quota.burst.max(1));
        let mut buckets = lock(&self.buckets);
        if buckets.len() >= MAX_TRACKED_CLIENTS && !buckets.contains_key(&peer) {
            // Idle clients have refilled to full; dropping their buckets
            // is lossless (a fresh bucket starts full too).
            buckets
                .retain(|_, b| b.tokens + now.duration_since(b.last).as_secs_f64() * rate < burst);
        }
        let bucket = buckets.entry(peer).or_insert(Bucket {
            tokens: burst,
            last: now,
        });
        let elapsed = now.duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * rate).min(burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Lock an admission mutex, propagating a poisoned-lock panic — same
/// policy as the queue and cache modules.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // analyze:allow(panic-in-request-path, reason = "poisoned admission state means another thread panicked mid-update; propagating is the only sound option")
    mutex.lock().expect("admission state poisoned")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::BUCKETS;
    use std::net::Ipv4Addr;
    use std::time::Duration;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(127, 0, 0, last))
    }

    fn counts(pairs: &[(usize, u64)]) -> Vec<u64> {
        let mut v = vec![0u64; BUCKETS];
        for &(bucket, n) in pairs {
            v[bucket] += n;
        }
        v
    }

    #[test]
    fn no_gates_admits_everything_without_a_peer_map() {
        let adm = Admission::new(AdmissionConfig::default());
        let metrics = Metrics::new();
        for _ in 0..100 {
            assert_eq!(adm.admit(Some(ip(1)), &metrics), None);
        }
        assert_eq!(adm.admit(None, &metrics), None);
    }

    #[test]
    fn p99_gate_waits_for_a_minimum_window_then_rejects_slow_tails() {
        let adm = Admission::new(AdmissionConfig {
            p99_target_us: Some(1000),
            quota: None,
        });
        // First call establishes the base — no judgement yet.
        assert_eq!(adm.windowed_p99(&counts(&[])), None);
        // Fewer than MIN_WINDOW observations: still no judgement.
        let few = counts(&[(12, MIN_WINDOW - 1)]); // ~4096µs each
        assert_eq!(adm.windowed_p99(&few), None);
        // A full window of slow requests: p99 is the 4096µs bucket's
        // upper bound, over the 1000µs target.
        let slow = counts(&[(12, 100)]);
        let p99 = adm.windowed_p99(&slow).expect("window is large enough");
        assert!(p99 > 1000, "p99 {p99} should exceed the target");
        // Fast requests beyond the span slide the base; this delta
        // still covers old+new (100 slow of 1124 is ~9%, far past the
        // 1% tail), but the *next* one only sees what came after.
        let mut slid = slow.clone();
        slid[2] += WINDOW_SPAN; // ~4µs each
        let p99 = adm.windowed_p99(&slid).expect("window is full");
        assert!(p99 > 1000, "p99 {p99} covers old+new before the slide");
        let mut fresh = slid.clone();
        fresh[2] += MIN_WINDOW;
        let p99 = adm.windowed_p99(&fresh).expect("post-slide window");
        assert!(p99 <= 7, "post-slide p99 {p99} sees only fast requests");
    }

    #[test]
    fn rejection_is_wired_through_admit() {
        let adm = Admission::new(AdmissionConfig {
            p99_target_us: Some(1000),
            quota: None,
        });
        let metrics = Metrics::new();
        assert_eq!(adm.admit(Some(ip(1)), &metrics), None, "establishes base");
        for _ in 0..200 {
            metrics.observe_us(5000);
        }
        assert_eq!(adm.admit(Some(ip(1)), &metrics), Some(Rejection::P99));
        assert_eq!(adm.admit(None, &metrics), None, "replay path is exempt");
    }

    #[test]
    fn token_bucket_enforces_burst_then_refills_at_rate() {
        let adm = Admission::new(AdmissionConfig {
            p99_target_us: None,
            quota: Some(Quota {
                rate_per_sec: 10,
                burst: 3,
            }),
        });
        let quota = adm.config().quota.expect("configured above");
        let t0 = Instant::now();
        for _ in 0..3 {
            assert!(adm.take_token(ip(1), quota, t0), "burst admits");
        }
        assert!(!adm.take_token(ip(1), quota, t0), "bucket exhausted");
        assert!(
            adm.take_token(ip(2), quota, t0),
            "other clients are unaffected"
        );
        // 100ms at 10 rps refills exactly one token.
        let t1 = t0 + Duration::from_millis(100);
        assert!(adm.take_token(ip(1), quota, t1), "refilled one token");
        assert!(!adm.take_token(ip(1), quota, t1), "and only one");
    }
}
