//! The HTTP/1.1 gateway: the same server core behind REST-shaped
//! routes, for clients (curl, dashboards, sidecars) that speak HTTP
//! rather than the canonical JSON-lines protocol.
//!
//! | route | method | maps to |
//! |---|---|---|
//! | `/predict` | POST | `predict` / `predict_batch` (body picks) |
//! | `/stats` | GET | `stats` |
//! | `/devices` | GET | `devices` |
//! | `/healthz` | GET | liveness probe (not a protocol request) |
//! | `/metrics` | GET | Prometheus text exposition (scrape probe) |
//! | `/admin/reload` | POST | `reload` (model hot-swap) |
//!
//! Response bodies are **exactly** the JSON-lines response bodies —
//! the gateway adds HTTP framing and a status code derived from the
//! typed error code, nothing else, so the two surfaces cannot drift.
//! A `POST /predict` body is either a canonical request object
//! (`{"op":"predict",...}`) or the same object without `"op"`
//! (`"sources"` selects the batch form). Both listeners share one
//! [`Server`]: the worker pool, queue, caches, metrics, admission
//! gates, and the connection cap are common, and a `shutdown` from
//! either side drains both.
//!
//! The parser is a deliberately small hand-rolled HTTP/1.1 subset (no
//! chunked bodies, no continuation lines) — this workspace is
//! dependency-free by design. Heads are bounded to 16 KiB and bodies
//! to the line protocol's request bound; keep-alive and pipelining
//! work, requests on one connection are answered strictly in order.

use crate::protocol::{ErrorBody, ErrorCode, Request};
use crate::server::{Server, MAX_LINE_BYTES, READ_POLL};
use gpufreq_obs::trace;
use serde::Value;
use std::io::{self, Read, Write};
use std::net::{IpAddr, TcpStream};

/// Largest accepted HTTP head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// The request header that carries (and the response header that
/// echoes) a request's trace id across the HTTP surface.
pub const TRACE_HEADER: &str = "x-gpufreq-trace";

/// What the HTTP adapter needs from the process behind it. The daemon
/// ([`Server`]) and the router front end both implement this, so one
/// HTTP surface serves both — routes, framing, bounds, and status
/// mapping cannot drift between them.
pub trait Gateway: Sync {
    /// Execute one protocol request to its serialized response body.
    /// `trace` is the caller-supplied trace id (already validated), to
    /// be carried through the process and echoed in the body.
    fn execute(&self, request: Request, peer: IpAddr, trace: Option<&str>) -> String;

    /// Whether the process is draining (healthz answers 503,
    /// keep-alive stops being honoured).
    fn shutting_down(&self) -> bool;

    /// The Prometheus text exposition served on `GET /metrics`. Like
    /// `/healthz` this is probe traffic: it bypasses the request queue
    /// and is not tallied in the request counters.
    fn exposition(&self) -> String;

    /// The `GET /healthz` liveness body. Implementations may extend
    /// the default with process identity (uptime, build, slots) — the
    /// `{"ok":"healthz"` prefix is load-bearing for probes.
    fn health_body(&self) -> String {
        "{\"ok\":\"healthz\"}".to_string()
    }

    /// Count and serialize a request that failed before it parsed into
    /// a protocol [`Request`] (unroutable path, wrong method, bad
    /// body), so malformed HTTP traffic is tallied like malformed
    /// protocol lines.
    fn malformed(&self, error: ErrorBody) -> String;

    /// Record a socket-setup failure on an accepted connection.
    fn note_setup_failure(&self, error: &io::Error);
}

impl Gateway for Server {
    fn execute(&self, request: Request, peer: IpAddr, trace: Option<&str>) -> String {
        self.execute_direct(request, Some(peer), trace)
    }

    fn shutting_down(&self) -> bool {
        self.is_shutting_down()
    }

    fn exposition(&self) -> String {
        Server::exposition(self)
    }

    fn health_body(&self) -> String {
        // analyze:allow(panic-in-request-path, reason = "the vendored serializer is infallible; expect() documents that invariant")
        let info = serde_json::to_string(&self.server_info()).expect("serializer is infallible");
        format!("{{\"ok\":\"healthz\",\"server\":{info}}}")
    }

    fn malformed(&self, error: ErrorBody) -> String {
        self.malformed_request_body(error)
    }

    fn note_setup_failure(&self, error: &io::Error) {
        Server::note_setup_failure(self, error);
    }
}

/// The routes the gateway answers. Paths are wire literals pinned by
/// the `wire-string-drift` lint against `wire_inventory.txt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /predict` → `predict` or `predict_batch`.
    Predict,
    /// `GET /stats` → `stats`.
    Stats,
    /// `GET /devices` → `devices`.
    Devices,
    /// `GET /healthz` → liveness probe.
    Healthz,
    /// `GET /metrics` → Prometheus text exposition (scrape probe).
    Metrics,
    /// `POST /admin/reload` → `reload` (model hot-swap).
    AdminReload,
}

impl Route {
    /// Every route, for resolution and exhaustive tests.
    pub const ALL: [Route; 6] = [
        Route::Predict,
        Route::Stats,
        Route::Devices,
        Route::Healthz,
        Route::Metrics,
        Route::AdminReload,
    ];

    /// The wire path of this route.
    pub const fn as_str(self) -> &'static str {
        match self {
            Route::Predict => "/predict",
            Route::Stats => "/stats",
            Route::Devices => "/devices",
            Route::Healthz => "/healthz",
            Route::Metrics => "/metrics",
            Route::AdminReload => "/admin/reload",
        }
    }

    /// The request method this route requires.
    pub const fn method(self) -> &'static str {
        match self {
            Route::Predict | Route::AdminReload => "POST",
            Route::Stats | Route::Devices | Route::Healthz | Route::Metrics => "GET",
        }
    }

    /// Resolve a request target to a route (query strings ignored).
    pub fn resolve(target: &str) -> Option<Route> {
        let path = match target.split_once('?') {
            Some((path, _query)) => path,
            None => target,
        };
        Route::ALL.into_iter().find(|r| r.as_str() == path)
    }
}

/// One parsed HTTP request.
#[derive(Debug)]
struct HttpRequest {
    method: String,
    target: String,
    body: Vec<u8>,
    keep_alive: bool,
    /// Validated [`TRACE_HEADER`] value, if the client sent one.
    trace: Option<String>,
}

/// One response ready for framing.
#[derive(Debug)]
struct HttpReply {
    status: u16,
    body: String,
    content_type: &'static str,
    /// Trace id echoed back in the [`TRACE_HEADER`] response header.
    trace: Option<String>,
}

impl HttpReply {
    /// A JSON reply with no trace echo — the shape of every error
    /// produced before a request (and its trace header) parsed.
    fn json(status: u16, body: String) -> HttpReply {
        HttpReply {
            status,
            body,
            content_type: "application/json",
            trace: None,
        }
    }
}

/// What reading the next request off the socket produced.
enum ReadOutcome {
    /// A complete request.
    Request(HttpRequest),
    /// EOF, a socket error, or shutdown observed while idle — close
    /// quietly.
    Closed,
    /// A framing error; answer it and close (the stream can no longer
    /// be trusted to be request-aligned).
    Malformed(HttpReply),
}

/// The canned HTTP refusal for a connection rejected at the
/// connection cap — written best-effort by the acceptor, which never
/// spawns a thread for the victim.
pub fn refusal_payload(body: &str) -> String {
    format!(
        "HTTP/1.1 503 Service Unavailable\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n{}",
        body.len(),
        body
    )
}

/// Serve one accepted HTTP connection until close, keep-alive
/// included. Called from the owning accept loop with the connection
/// slot already claimed.
pub fn serve_http_connection<G: Gateway>(gateway: &G, stream: TcpStream, peer: IpAddr) {
    if let Err(e) = setup(&stream) {
        gateway.note_setup_failure(&e);
        return;
    }
    // Bytes read past the previous request's end (pipelining).
    let mut leftover: Vec<u8> = Vec::new();
    loop {
        let request = match read_request(gateway, &stream, &mut leftover) {
            ReadOutcome::Request(request) => request,
            ReadOutcome::Closed => break,
            ReadOutcome::Malformed(reply) => {
                let _ = write_reply(&stream, &reply, false);
                break;
            }
        };
        let keep_alive = request.keep_alive && !gateway.shutting_down();
        let reply = respond(gateway, &request, peer);
        if write_reply(&stream, &reply, keep_alive).is_err() || !keep_alive {
            break;
        }
    }
}

/// Mirror the line listener's socket setup (blocking + read timeout so
/// idle connections notice a server-wide shutdown).
fn setup(stream: &TcpStream) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_POLL))?;
    Ok(())
}

/// Pull more bytes into `buf`. `Ok(false)` means the connection is
/// done: EOF, or a shutdown observed during a read timeout.
fn read_more<G: Gateway>(
    gateway: &G,
    mut stream: &TcpStream,
    buf: &mut Vec<u8>,
) -> io::Result<bool> {
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(false),
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                return Ok(true);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if gateway.shutting_down() {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// A 4xx framing error as a [`ReadOutcome`].
fn framing_error(message: impl Into<String>) -> ReadOutcome {
    let error = ErrorBody::new(ErrorCode::BadRequest, message);
    ReadOutcome::Malformed(HttpReply::json(400, error.into_response().to_json()))
}

/// Read and parse the next HTTP request. Bounds: the head at
/// [`MAX_HEAD_BYTES`], the body at [`MAX_LINE_BYTES`] (the same limit
/// as a protocol line, enforced *before* the body is read so an
/// oversized upload is never buffered).
fn read_request<G: Gateway>(gateway: &G, stream: &TcpStream, buf: &mut Vec<u8>) -> ReadOutcome {
    let head_end = loop {
        if let Some(pos) = find_head_end(buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return framing_error(format!("HTTP request head exceeds {MAX_HEAD_BYTES} bytes"));
        }
        match read_more(gateway, stream, buf) {
            Ok(true) => {}
            // EOF mid-head (or clean close between requests).
            Ok(false) | Err(_) => return ReadOutcome::Closed,
        }
    };
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(head) => head.to_string(),
        Err(_) => return framing_error("HTTP request head is not valid UTF-8"),
    };
    buf.drain(..head_end + 4);
    let mut lines = head.split("\r\n");
    let request_line = match lines.next() {
        Some(line) => line,
        None => return framing_error("empty HTTP request"),
    };
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return framing_error(format!("malformed HTTP request line `{request_line}`"));
    };
    if !version.starts_with("HTTP/1.") {
        return framing_error(format!("unsupported protocol version `{version}`"));
    }
    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive, 1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    let mut trace_id: Option<String> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = match value.parse::<usize>() {
                Ok(n) => n,
                Err(_) => return framing_error(format!("bad content-length `{value}`")),
            };
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case(TRACE_HEADER) {
            // A malformed id is dropped, not refused: tracing is
            // opt-in telemetry and must never fail a request.
            if trace::is_valid(value) {
                trace_id = Some(value.to_string());
            }
        }
    }
    if content_length > MAX_LINE_BYTES {
        let error = ErrorBody::new(
            ErrorCode::BadRequest,
            format!("request body exceeds {MAX_LINE_BYTES} bytes"),
        );
        return ReadOutcome::Malformed(HttpReply::json(413, error.into_response().to_json()));
    }
    while buf.len() < content_length {
        match read_more(gateway, stream, buf) {
            Ok(true) => {}
            Ok(false) | Err(_) => return ReadOutcome::Closed,
        }
    }
    let body: Vec<u8> = buf.drain(..content_length).collect();
    ReadOutcome::Request(HttpRequest {
        method: method.to_string(),
        target: target.to_string(),
        body,
        keep_alive,
        trace: trace_id,
    })
}

/// Position of the `\r\n\r\n` head terminator, if buffered.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Route and execute one request against the gateway behind the
/// adapter.
fn respond<G: Gateway>(gateway: &G, request: &HttpRequest, peer: IpAddr) -> HttpReply {
    let Some(route) = Route::resolve(&request.target) else {
        return HttpReply::json(
            404,
            gateway.malformed(ErrorBody::new(
                ErrorCode::BadRequest,
                format!("no route `{}`", request.target),
            )),
        );
    };
    if request.method != route.method() {
        return HttpReply::json(
            405,
            gateway.malformed(ErrorBody::new(
                ErrorCode::BadRequest,
                format!("{} requires {}", route.as_str(), route.method()),
            )),
        );
    }
    let trace = request.trace.as_deref();
    let mut reply = match route {
        // Liveness must stay cheap and must not pollute the request
        // counters — probes fire continuously.
        Route::Healthz => {
            if gateway.shutting_down() {
                HttpReply::json(
                    503,
                    ErrorBody::new(ErrorCode::ShuttingDown, "server is shutting down")
                        .into_response()
                        .to_json(),
                )
            } else {
                HttpReply::json(200, gateway.health_body())
            }
        }
        // Scrape traffic, same policy as healthz: answered outside the
        // request queue and excluded from the request counters.
        Route::Metrics => HttpReply {
            status: 200,
            body: gateway.exposition(),
            content_type: "text/plain; version=0.0.4",
            trace: None,
        },
        Route::Stats => reply_from_body(gateway.execute(Request::Stats, peer, trace)),
        Route::Devices => reply_from_body(gateway.execute(Request::Devices, peer, trace)),
        Route::Predict | Route::AdminReload => match parse_body_request(&request.body, route) {
            Ok(parsed) => reply_from_body(gateway.execute(parsed, peer, trace)),
            Err(e) => reply_from_body(gateway.malformed(e)),
        },
    };
    // Echo the caller's trace id as a response header on every routed
    // reply (the JSON body additionally carries it when the request
    // reached the protocol core).
    reply.trace = request.trace.clone();
    reply
}

/// Parse the JSON body of a POST route into a protocol [`Request`].
fn parse_body_request(body: &[u8], route: Route) -> Result<Request, ErrorBody> {
    let bad = |e: std::fmt::Arguments<'_>| {
        ErrorBody::new(ErrorCode::BadRequest, format!("bad request body: {e}"))
    };
    let text = std::str::from_utf8(body)
        .map_err(|_| bad(format_args!("not valid UTF-8")))?
        .trim();
    if text.is_empty() {
        return Err(bad(format_args!("{} requires a JSON body", route.as_str())));
    }
    let value: Value = serde_json::from_str(text).map_err(|e| bad(format_args!("{e}")))?;
    let entries =
        serde::expect_object(&value, "request body").map_err(|e| bad(format_args!("{e}")))?;
    let has = |name: &str| entries.iter().any(|(k, _)| k == name);
    match route {
        Route::Predict => {
            if has("op") {
                // The canonical line-protocol object works verbatim —
                // but only for the two predict ops this route serves.
                let request = Request::parse(text)?;
                if !matches!(
                    request,
                    Request::Predict { .. } | Request::PredictBatch { .. }
                ) {
                    return Err(bad(format_args!(
                        "op `{}` does not belong on {}",
                        request.op(),
                        Route::Predict.as_str()
                    )));
                }
                return Ok(request);
            }
            if has("sources") {
                Ok(Request::PredictBatch {
                    device: serde::field(entries, "device", "predict")
                        .map_err(|e| bad(format_args!("{e}")))?,
                    sources: serde::field(entries, "sources", "predict")
                        .map_err(|e| bad(format_args!("{e}")))?,
                })
            } else {
                Ok(Request::Predict {
                    device: serde::field(entries, "device", "predict")
                        .map_err(|e| bad(format_args!("{e}")))?,
                    source: serde::field(entries, "source", "predict")
                        .map_err(|e| bad(format_args!("{e}")))?,
                })
            }
        }
        Route::AdminReload => Ok(Request::Reload {
            device: serde::field(entries, "device", "reload")
                .map_err(|e| bad(format_args!("{e}")))?,
            path: serde::field(entries, "path", "reload").map_err(|e| bad(format_args!("{e}")))?,
        }),
        Route::Stats | Route::Devices | Route::Healthz | Route::Metrics => Err(bad(format_args!(
            "{} takes no request body",
            route.as_str()
        ))),
    }
}

/// Wrap a protocol response body, deriving the status from its typed
/// error code. Bodies are trusted server output serialized by this
/// process, so the prefix check is exact, not a heuristic.
fn reply_from_body(body: String) -> HttpReply {
    let status = status_for(&body);
    HttpReply::json(status, body)
}

/// HTTP status for a serialized protocol response body.
fn status_for(body: &str) -> u16 {
    let Some(rest) = body.strip_prefix("{\"error\":{\"code\":\"") else {
        return 200;
    };
    let Some(end) = rest.find('"') else {
        return 500;
    };
    match &rest[..end] {
        "bad_request" => 400,
        "unknown_device" | "device_not_served" => 404,
        "kernel" => 422,
        "overloaded" | "shutting_down" => 503,
        // reload_failed, internal, and anything future-unknown.
        _ => 500,
    }
}

/// Canonical reason phrase for the statuses the gateway emits.
const fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Frame and write one reply; the body is always followed by a flush
/// so pipelined clients are never stuck behind a buffered response.
fn write_reply(mut stream: &TcpStream, reply: &HttpReply, keep_alive: bool) -> io::Result<()> {
    let trace_header = match &reply.trace {
        Some(id) => format!("{TRACE_HEADER}: {id}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n{}connection: {}\r\n\r\n",
        reply.status,
        reason(reply.status),
        reply.content_type,
        reply.body.len(),
        trace_header,
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(reply.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_resolve_with_and_without_query_strings() {
        for route in Route::ALL {
            assert_eq!(Route::resolve(route.as_str()), Some(route));
            assert_eq!(
                Route::resolve(&format!("{}?x=1", route.as_str())),
                Some(route)
            );
        }
        assert_eq!(Route::resolve("/nope"), None);
        assert_eq!(Route::resolve("/predict/extra"), None);
        assert_eq!(Route::resolve(""), None);
    }

    #[test]
    fn status_mapping_follows_the_typed_error_code() {
        assert_eq!(
            status_for("{\"ok\":\"predict\",\"device\":\"titan-x\"}"),
            200
        );
        let of = |code: &str| {
            status_for(&format!(
                "{{\"error\":{{\"code\":\"{code}\",\"message\":\"m\"}}}}"
            ))
        };
        assert_eq!(of("bad_request"), 400);
        assert_eq!(of("unknown_device"), 404);
        assert_eq!(of("device_not_served"), 404);
        assert_eq!(of("kernel"), 422);
        assert_eq!(of("overloaded"), 503);
        assert_eq!(of("shutting_down"), 503);
        assert_eq!(of("reload_failed"), 500);
        assert_eq!(of("internal"), 500);
    }

    #[test]
    fn predict_bodies_parse_with_and_without_op() {
        let tagged = parse_body_request(
            b"{\"op\":\"predict\",\"device\":\"titan-x\",\"source\":\"k\"}",
            Route::Predict,
        )
        .unwrap();
        assert!(matches!(tagged, Request::Predict { .. }));
        let untagged =
            parse_body_request(b"{\"device\":\"titan-x\",\"source\":\"k\"}", Route::Predict)
                .unwrap();
        assert_eq!(tagged, untagged);
        let batch = parse_body_request(
            b"{\"device\":\"titan-x\",\"sources\":[\"a\",\"b\"]}",
            Route::Predict,
        )
        .unwrap();
        assert!(matches!(batch, Request::PredictBatch { .. }));
        // A non-predict op cannot ride in through /predict.
        let err = parse_body_request(b"{\"op\":\"shutdown\"}", Route::Predict).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("does not belong"), "{}", err.message);
        // Reload bodies.
        let reload = parse_body_request(
            b"{\"device\":\"titan-x\",\"path\":\"/tmp/m.json\"}",
            Route::AdminReload,
        )
        .unwrap();
        assert!(matches!(reload, Request::Reload { .. }));
        // Garbage.
        for bad in [&b"not json"[..], b"[]", b"", b"\xff\xfe"] {
            assert_eq!(
                parse_body_request(bad, Route::Predict).unwrap_err().code,
                ErrorCode::BadRequest
            );
        }
    }

    #[test]
    fn head_terminator_and_refusal_framing() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
        let payload = refusal_payload("{\"error\":{}}");
        assert!(payload.starts_with("HTTP/1.1 503 "));
        assert!(payload.contains("content-length: 12\r\n"));
        assert!(payload.ends_with("\r\n\r\n{\"error\":{}}"));
    }
}
