//! HTTP gateway round trips against an in-process daemon: every route
//! answers on one keep-alive connection, typed error codes map to the
//! documented statuses, and an admin hot-reload swaps the model while
//! an open prediction connection keeps being served — zero drops.

use gpufreq_core::{Corpus, ModelConfig, Planner, TrainedPlanner};
use gpufreq_serve::protocol::{Request, Response};
use gpufreq_serve::{Server, ServerConfig};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::OnceLock;
use std::thread::JoinHandle;

const SAXPY: &str = "__kernel void saxpy(__global float* x, __global float* y, float a) {
    uint i = get_global_id(0);
    y[i] = a * x[i] + y[i];
}";

fn planner() -> TrainedPlanner {
    static PLANNER: OnceLock<TrainedPlanner> = OnceLock::new();
    PLANNER
        .get_or_init(|| {
            Planner::builder()
                .corpus(Corpus::Fast)
                .settings(4)
                .model_config(ModelConfig::relaxed())
                .train()
                .expect("fast corpus trains")
        })
        .clone()
}

/// Boot a daemon with both listeners on ephemeral loopback ports;
/// returns `(line_addr, http_addr, join_handle)`.
fn start() -> (SocketAddr, SocketAddr, JoinHandle<()>) {
    let line = TcpListener::bind("127.0.0.1:0").expect("line bind");
    let http = TcpListener::bind("127.0.0.1:0").expect("http bind");
    let line_addr = line.local_addr().unwrap();
    let http_addr = http.local_addr().unwrap();
    let server = Server::new(
        vec![planner()],
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("one planner");
    let handle = std::thread::spawn(move || {
        server
            .serve_with_http(line, Some(http))
            .expect("serve loop");
    });
    (line_addr, http_addr, handle)
}

/// Shut the daemon down through the line port (the gateway
/// deliberately has no shutdown route).
fn shut_down(line_addr: SocketAddr, handle: JoinHandle<()>) {
    let mut stream = TcpStream::connect(line_addr).expect("connect for shutdown");
    writeln!(stream, "{}", Request::Shutdown.to_json()).expect("send shutdown");
    let mut line = String::new();
    BufReader::new(&stream)
        .read_line(&mut line)
        .expect("shutdown ack");
    handle.join().expect("daemon thread exits cleanly");
}

struct Reply {
    status: u16,
    headers: HashMap<String, String>,
    body: String,
}

/// One HTTP exchange on an open connection; the framing mirrors what
/// any minimal client (curl, the loadgen `--http` mode) produces.
fn exchange(stream: &mut TcpStream, method: &str, target: &str, body: Option<&str>) -> Reply {
    let mut request = format!("{method} {target} HTTP/1.1\r\nhost: gpufreq-test\r\n");
    if let Some(body) = body {
        request.push_str(&format!("content-length: {}\r\n", body.len()));
    }
    request.push_str("\r\n");
    if let Some(body) = body {
        request.push_str(body);
    }
    stream.write_all(request.as_bytes()).expect("send request");
    read_reply(stream)
}

fn read_reply(stream: &mut TcpStream) -> Reply {
    let mut reader = BufReader::new(&*stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .strip_prefix("HTTP/1.1 ")
        .unwrap_or_else(|| panic!("not an HTTP/1.1 status line: {status_line:?}"))
        .split_whitespace()
        .next()
        .and_then(|s| s.parse().ok())
        .expect("numeric status");
    let mut headers = HashMap::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
        }
    }
    let length: usize = headers
        .get("content-length")
        .and_then(|v| v.parse().ok())
        .expect("content-length on every gateway reply");
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("body");
    Reply {
        status,
        headers,
        body: String::from_utf8(body).expect("utf-8 body"),
    }
}

#[test]
fn every_route_answers_on_one_keep_alive_connection() {
    let (line_addr, http_addr, handle) = start();
    let mut stream = TcpStream::connect(http_addr).expect("http connect");

    let health = exchange(&mut stream, "GET", "/healthz", None);
    assert_eq!(health.status, 200);
    assert!(
        health.body.starts_with("{\"ok\":\"healthz\""),
        "probe prefix is load-bearing: {}",
        health.body
    );
    assert!(
        health.body.contains("\"uptime_s\":") && health.body.contains("\"slots\":"),
        "healthz carries process identity: {}",
        health.body
    );
    assert_eq!(
        health.headers.get("connection").map(String::as_str),
        Some("keep-alive")
    );
    assert_eq!(
        health.headers.get("content-type").map(String::as_str),
        Some("application/json")
    );

    // The scrape endpoint answers a parseable Prometheus exposition
    // with the text content type, outside the request counters.
    let metrics = exchange(&mut stream, "GET", "/metrics", None);
    assert_eq!(metrics.status, 200);
    assert_eq!(
        metrics.headers.get("content-type").map(String::as_str),
        Some("text/plain; version=0.0.4")
    );
    let families = gpufreq_obs::parse_exposition(&metrics.body).expect("exposition parses");
    assert!(
        families.iter().any(|f| f.name == "gpufreq_uptime_seconds"),
        "{}",
        metrics.body
    );

    let devices = exchange(&mut stream, "GET", "/devices", None);
    assert_eq!(devices.status, 200);
    let Response::Devices { devices } = Response::parse(&devices.body).unwrap() else {
        panic!("/devices body is the protocol devices response");
    };
    assert_eq!(devices.len(), 1);
    assert_eq!(devices[0].id, "titan-x");

    // Tagged (line-protocol) and untagged (plain-HTTP) predict bodies
    // land on the same execution path and answer identically shaped
    // predictions.
    let tagged = format!(
        "{{\"op\":\"predict\",\"device\":\"titan-x\",\"source\":{}}}",
        json_string(SAXPY)
    );
    let reply = exchange(&mut stream, "POST", "/predict", Some(&tagged));
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(matches!(
        Response::parse(&reply.body).unwrap(),
        Response::Predict { .. }
    ));

    let untagged = format!(
        "{{\"device\":\"titan-x\",\"source\":{}}}",
        json_string(SAXPY)
    );
    let untagged_reply = exchange(&mut stream, "POST", "/predict", Some(&untagged));
    assert_eq!(untagged_reply.status, 200);
    assert_eq!(
        untagged_reply.body, reply.body,
        "same kernel, same prediction, regardless of body style"
    );

    let batch = format!(
        "{{\"device\":\"titan-x\",\"sources\":[{},\"not a kernel\"]}}",
        json_string(SAXPY)
    );
    let batch_reply = exchange(&mut stream, "POST", "/predict", Some(&batch));
    assert_eq!(batch_reply.status, 200);
    assert!(matches!(
        Response::parse(&batch_reply.body).unwrap(),
        Response::PredictBatch { .. }
    ));

    // Query strings are routing no-ops.
    let stats = exchange(&mut stream, "GET", "/stats?pretty=1", None);
    assert_eq!(stats.status, 200);
    let Response::Stats { stats } = Response::parse(&stats.body).unwrap() else {
        panic!("/stats body is the protocol stats response");
    };
    assert!(stats.requests.predict >= 2, "{:?}", stats.requests);
    assert_eq!(stats.connections.opened, 1, "one keep-alive connection");

    shut_down(line_addr, handle);
}

#[test]
fn typed_error_codes_map_to_the_documented_statuses() {
    let (line_addr, http_addr, handle) = start();
    let mut stream = TcpStream::connect(http_addr).expect("http connect");

    // Routing errors first: unroutable target, wrong method.
    assert_eq!(exchange(&mut stream, "GET", "/nope", None).status, 404);
    assert_eq!(exchange(&mut stream, "GET", "/predict", None).status, 405);
    assert_eq!(exchange(&mut stream, "POST", "/stats", None).status, 405);

    // Body errors: garbage, wrong op for the route, unknown device,
    // known-but-unserved device, unparsable kernel.
    let case = |stream: &mut TcpStream, body: &str| -> (u16, String) {
        let reply = exchange(stream, "POST", "/predict", Some(body));
        (reply.status, reply.body)
    };
    assert_eq!(case(&mut stream, "not json").0, 400);
    assert_eq!(case(&mut stream, "{\"op\":\"shutdown\"}").0, 400);
    assert_eq!(
        case(&mut stream, "{\"device\":\"gtx-9000\",\"source\":\"x\"}").0,
        404
    );
    assert_eq!(
        case(&mut stream, "{\"device\":\"tesla-p100\",\"source\":\"x\"}").0,
        404
    );
    let (status, body) = case(
        &mut stream,
        "{\"device\":\"titan-x\",\"source\":\"void not_a_kernel() {}\"}",
    );
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("\"code\":\"kernel\""), "{body}");

    // A declared body larger than the line bound is refused before a
    // single body byte is read; the gateway then closes the
    // connection, since the unread body would desynchronize framing.
    let mut oversize = TcpStream::connect(http_addr).expect("http connect");
    oversize
        .write_all(b"POST /predict HTTP/1.1\r\ncontent-length: 536870912\r\n\r\n")
        .expect("send oversize head");
    let reply = read_reply(&mut oversize);
    assert_eq!(reply.status, 413);
    assert_eq!(
        reply.headers.get("connection").map(String::as_str),
        Some("close")
    );
    let mut rest = Vec::new();
    (&oversize)
        .read_to_end(&mut rest)
        .expect("server closed the oversize connection");
    assert!(rest.is_empty());

    shut_down(line_addr, handle);
}

#[test]
fn hot_reload_swaps_the_model_without_dropping_open_connections() {
    let dir = std::env::temp_dir().join("gpufreq-http-roundtrip");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let artifact = dir.join("titan-x-v2.json");
    planner().save(&artifact).expect("artifact saves");

    let (line_addr, http_addr, handle) = start();

    // A long-lived data-plane connection, established before any swap.
    let mut data = TcpStream::connect(http_addr).expect("data connect");
    let body = format!(
        "{{\"device\":\"titan-x\",\"source\":{}}}",
        json_string(SAXPY)
    );
    let before = exchange(&mut data, "POST", "/predict", Some(&body));
    assert_eq!(before.status, 200);

    // Admin swaps the model twice from a second connection; versions
    // are monotonic per device slot (1 = the boot model).
    let mut admin = TcpStream::connect(http_addr).expect("admin connect");
    let reload_body = format!(
        "{{\"device\":\"titan-x\",\"path\":{}}}",
        json_string(&artifact.to_string_lossy())
    );
    for expected_version in [2u64, 3] {
        let reply = exchange(&mut admin, "POST", "/admin/reload", Some(&reload_body));
        assert_eq!(reply.status, 200, "{}", reply.body);
        let Response::Reload { version, .. } = Response::parse(&reply.body).unwrap() else {
            panic!(
                "reload body is the protocol reload response: {}",
                reply.body
            );
        };
        assert_eq!(version, expected_version);

        // The pre-swap connection keeps being served — zero drops —
        // and the same kernel still predicts identically (same
        // artifact, so the swap is observable only via the version).
        let after = exchange(&mut data, "POST", "/predict", Some(&body));
        assert_eq!(after.status, 200);
        assert_eq!(after.body, before.body);
    }

    // A reload naming a missing artifact is a typed 500, and still
    // does not disturb the data plane.
    let broken = exchange(
        &mut admin,
        "POST",
        "/admin/reload",
        Some("{\"device\":\"titan-x\",\"path\":\"/nonexistent/model.json\"}"),
    );
    assert_eq!(broken.status, 500, "{}", broken.body);
    assert!(
        broken.body.contains("\"code\":\"reload_failed\""),
        "{}",
        broken.body
    );
    let after = exchange(&mut data, "POST", "/predict", Some(&body));
    assert_eq!(after.status, 200);

    let stats_reply = exchange(&mut admin, "GET", "/stats", None);
    let Response::Stats { stats } = Response::parse(&stats_reply.body).unwrap() else {
        panic!("stats parses");
    };
    assert_eq!(stats.requests.reload, 3);
    assert_eq!(stats.connections.opened, 2);
    assert_eq!(stats.connections.closed, 0, "zero dropped connections");

    shut_down(line_addr, handle);
}

/// Minimal JSON string escaping for test bodies (quotes, backslashes,
/// and the newlines inside kernel sources).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
