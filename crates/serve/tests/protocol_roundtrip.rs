//! Wire-protocol contract tests: every request/response variant
//! round-trips through its JSON-line form, and malformed input is
//! answered with a typed error response — never a dropped connection.

use gpufreq_core::{Corpus, ModelConfig, Planner};
use gpufreq_serve::protocol::{
    BatchResult, CacheStats, ConnectionStats, DeviceInfo, ErrorBody, ErrorCode, LatencyStats,
    QueueStats, Request, RequestCounts, Response, ServerInfo, ServerStats, SlotInfo,
};
use gpufreq_serve::{Server, ServerConfig};
use gpufreq_sim::Device;

const SAXPY: &str = "__kernel void saxpy(__global float* x, __global float* y, float a) {
    uint i = get_global_id(0);
    y[i] = a * x[i] + y[i];
}";

fn round_trip_request(request: &Request) {
    let line = request.to_json();
    assert!(!line.contains('\n'), "one request = one line: {line}");
    let back = Request::parse(&line).expect("serialized request parses");
    assert_eq!(&back, request, "{line}");
}

fn round_trip_response(response: &Response) {
    let line = response.to_json();
    assert!(!line.contains('\n'), "one response = one line: {line}");
    let back = Response::parse(&line).expect("serialized response parses");
    assert_eq!(&back, response, "{line}");
}

#[test]
fn every_request_variant_round_trips() {
    for request in [
        Request::predict(Device::TitanX, SAXPY),
        Request::Predict {
            device: "gtx-9000".into(), // unknown ids survive the wire untouched
            source: "quote \" backslash \\ newline \n tab \t".into(),
        },
        Request::predict_batch(
            Device::TeslaP100,
            vec![SAXPY.to_string(), "not a kernel".to_string()],
        ),
        Request::PredictBatch {
            device: Device::TeslaK20c.id().into(),
            sources: Vec::new(),
        },
        Request::Devices,
        Request::Stats,
        Request::Metrics,
        Request::Reload {
            device: Device::TitanX.id().into(),
            path: "/var/lib/gpufreq/models/titan-x-v2.json".into(),
        },
        Request::Shutdown,
    ] {
        round_trip_request(&request);
    }
}

/// A real prediction (from a fast-trained planner) so the heavyweight
/// payload — nested `ParetoPrediction` with f64 objectives — is
/// exercised end to end, not just an empty stub.
fn real_prediction_response() -> Response {
    let planner = Planner::builder()
        .corpus(Corpus::Fast)
        .settings(4)
        .model_config(ModelConfig::relaxed())
        .train()
        .expect("fast corpus trains");
    Response::Predict {
        device: planner.device(),
        prediction: planner.predict_source(SAXPY).expect("saxpy predicts"),
    }
}

#[test]
fn every_response_variant_round_trips() {
    let predict = real_prediction_response();
    let Response::Predict { prediction, .. } = predict.clone() else {
        unreachable!()
    };
    for response in [
        predict,
        Response::PredictBatch {
            device: Device::TitanX,
            results: vec![
                BatchResult::Ok(prediction),
                BatchResult::Err(ErrorBody::new(ErrorCode::Kernel, "expected `__kernel`")),
            ],
        },
        Response::PredictBatch {
            device: Device::TeslaP100,
            results: Vec::new(),
        },
        Response::Devices {
            devices: vec![DeviceInfo {
                id: "titan-x".into(),
                name: "GTX Titan X".into(),
                memory_domains: 4,
                configurations: 219,
            }],
        },
        Response::Stats {
            stats: Box::new(ServerStats {
                requests: RequestCounts {
                    total: 10,
                    predict: 4,
                    predict_batch: 1,
                    batch_kernels: 3,
                    devices: 1,
                    stats: 1,
                    metrics: 1,
                    shutdown: 1,
                    errors: 2,
                    rejected: 3,
                    reload: 1,
                    rejected_p99: 1,
                    rejected_quota: 1,
                },
                front_cache: CacheStats {
                    hits: 3,
                    misses: 4,
                    evictions: 1,
                    len: 3,
                    capacity: 64,
                },
                analysis_cache: CacheStats {
                    hits: 2,
                    misses: 3,
                    evictions: 0,
                    len: 3,
                    capacity: 0,
                },
                queue: QueueStats {
                    depth: 0,
                    capacity: 256,
                },
                workers: 4,
                latency_us: LatencyStats {
                    count: 9,
                    p50: 255,
                    p95: 4095,
                    p99: 4095,
                    max: 3000,
                },
                connections: ConnectionStats {
                    opened: 12,
                    closed: 9,
                    refused: 2,
                    failed: 1,
                    active: 3,
                },
                server: ServerInfo {
                    uptime_s: 42,
                    build: "abc1234".into(),
                    slots: vec![SlotInfo {
                        device: "titan-x".into(),
                        version: 2,
                    }],
                },
            }),
        },
        Response::Metrics {
            exposition: "# TYPE gpufreq_requests_total counter\ngpufreq_requests_total 7\n".into(),
        },
        Response::Reload {
            device: Device::TeslaP100,
            version: 3,
        },
        Response::Shutdown,
    ] {
        round_trip_response(&response);
    }
}

#[test]
fn every_error_code_round_trips() {
    for code in ErrorCode::ALL {
        let response = ErrorBody::new(code, format!("message for {code}")).into_response();
        round_trip_response(&response);
        let line = response.to_json();
        assert!(
            line.contains(&format!("\"code\":\"{code}\"")),
            "stable snake_case spelling on the wire: {line}"
        );
    }
}

#[test]
fn malformed_lines_are_typed_errors_not_parse_panics() {
    for bad in [
        "",
        "not json at all",
        "42",
        "[1,2,3]",
        "{}",
        "{\"op\":\"frobnicate\"}",
        "{\"op\":\"predict\"}",                               // missing fields
        "{\"op\":\"predict\",\"device\":7,\"source\":\"x\"}", // wrong type
        "{\"op\":\"predict\",\"device\":\"titan-x\",\"source\":\"x\"", // truncated
    ] {
        let err = Request::parse(bad).expect_err(&format!("`{bad}` must not parse"));
        assert_eq!(err.code, ErrorCode::BadRequest, "{bad}");
        assert!(!err.message.is_empty());
    }
}

/// The server-level half of the satellite: a stream with malformed
/// JSON in the middle keeps the connection alive — the bad line gets
/// a typed `bad_request` response and the *next* request on the same
/// stream is still served.
#[test]
fn malformed_json_mid_stream_does_not_drop_the_connection() {
    let planner = Planner::builder()
        .corpus(Corpus::Fast)
        .settings(4)
        .model_config(ModelConfig::relaxed())
        .train()
        .expect("fast corpus trains");
    let server = Server::new(
        vec![planner],
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("one planner");
    let stream = format!(
        "{}\n{{{{{{ not json\n{}\n",
        Request::Devices.to_json(),
        Request::predict(Device::TitanX, SAXPY).to_json(),
    );
    let mut out = Vec::new();
    let summary = server.serve_lines(stream.as_bytes(), &mut out).unwrap();
    let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
    assert_eq!(lines.len(), 3, "all three lines answered: {lines:?}");
    assert!(matches!(
        Response::parse(lines[0]).unwrap(),
        Response::Devices { .. }
    ));
    assert_eq!(
        Response::parse(lines[1]).unwrap().error().unwrap().code,
        ErrorCode::BadRequest
    );
    assert!(
        matches!(Response::parse(lines[2]).unwrap(), Response::Predict { .. }),
        "the request after the bad line is still served"
    );
    assert_eq!(summary.requests.total, 3);
    assert_eq!(summary.requests.errors, 1);
}
