//! Connection-lifecycle stress tests against a real daemon on a
//! loopback socket: the concurrent-connection cap refuses with a
//! typed `overloaded` line (never a silent drop), concurrent clients
//! pipelining mixed traffic each get byte-identical in-order answers,
//! and every connection thread is reaped (`opened == closed`,
//! `active == 0`) — the regression net for the thread-per-connection
//! leak fixed in PR 8.

use gpufreq_core::{Corpus, ModelConfig, Planner, TrainedPlanner};
use gpufreq_serve::protocol::{ErrorCode, Request, Response, ServerStats};
use gpufreq_serve::{Server, ServerConfig};
use gpufreq_sim::Device;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Barrier, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const SAXPY: &str = "__kernel void saxpy(__global float* x, __global float* y, float a) {
    uint i = get_global_id(0);
    y[i] = a * x[i] + y[i];
}";

/// One fast planner shared by both tests (training dominates runtime).
fn planner() -> TrainedPlanner {
    static PLANNER: OnceLock<TrainedPlanner> = OnceLock::new();
    PLANNER
        .get_or_init(|| {
            Planner::builder()
                .corpus(Corpus::Fast)
                .settings(4)
                .model_config(ModelConfig::relaxed())
                .train()
                .expect("fast corpus trains")
        })
        .clone()
}

/// Boot a daemon on an ephemeral loopback port; the thread returns the
/// final stats snapshot once a `shutdown` request drains it.
fn start(config: ServerConfig) -> (SocketAddr, JoinHandle<ServerStats>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().expect("bound addr");
    let server = Server::new(vec![planner()], config).expect("one planner");
    let handle = std::thread::spawn(move || server.serve(listener).expect("serve loop"));
    (addr, handle)
}

fn shut_down(addr: SocketAddr, handle: JoinHandle<ServerStats>) -> ServerStats {
    let mut stream = TcpStream::connect(addr).expect("connect for shutdown");
    writeln!(stream, "{}", Request::Shutdown.to_json()).expect("send shutdown");
    let mut line = String::new();
    BufReader::new(&stream)
        .read_line(&mut line)
        .expect("shutdown ack");
    assert!(matches!(
        Response::parse(line.trim()).expect("ack parses"),
        Response::Shutdown
    ));
    handle.join().expect("daemon thread exits cleanly")
}

/// One round trip on an already-open connection.
fn ask(stream: &mut TcpStream, request: &Request) -> Response {
    writeln!(stream, "{}", request.to_json()).expect("send");
    let mut line = String::new();
    BufReader::new(&*stream).read_line(&mut line).expect("recv");
    Response::parse(line.trim()).expect("response parses")
}

#[test]
fn past_the_cap_connections_get_a_typed_refusal_then_recover() {
    let cap = 4;
    let (addr, handle) = start(ServerConfig {
        workers: 2,
        max_connections: cap,
        ..ServerConfig::default()
    });

    // Fill the cap with holders; a served round trip proves each one
    // made it past dispatch (not just into a kernel accept queue).
    let mut holders = Vec::new();
    for _ in 0..cap {
        let mut stream = TcpStream::connect(addr).expect("holder connects");
        let response = ask(&mut stream, &Request::predict(Device::TitanX, SAXPY));
        assert!(matches!(response, Response::Predict { .. }), "{response:?}");
        holders.push(stream);
    }

    // Every socket past the cap is answered with one typed
    // `overloaded` line and then closed — never silently dropped,
    // never given a thread.
    for i in 0..3 {
        let stream = TcpStream::connect(addr).expect("victim connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut refusal = String::new();
        BufReader::new(&stream)
            .read_to_string(&mut refusal)
            .expect("refusal line then EOF");
        let error = Response::parse(refusal.trim())
            .expect("refusal is protocol JSON")
            .error()
            .cloned()
            .unwrap_or_else(|| panic!("victim {i} got a non-error: {refusal}"));
        assert_eq!(error.code, ErrorCode::Overloaded, "{refusal}");
        assert!(error.message.contains("connection cap"), "{refusal}");
    }

    // Release the holders; their threads must be reaped so fresh
    // clients are admitted again (the leak regression: a stuck reader
    // would pin `active` at the cap forever).
    drop(holders);
    // A probe may itself be refused (or hit a dying socket) while the
    // holders drain, so tolerate every failure mode until the deadline.
    let probe = || -> Option<ServerStats> {
        let mut stream = TcpStream::connect(addr).ok()?;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .ok()?;
        writeln!(stream, "{}", Request::Stats.to_json()).ok()?;
        let mut line = String::new();
        BufReader::new(&stream).read_line(&mut line).ok()?;
        match Response::parse(line.trim()).ok()? {
            Response::Stats { stats } => Some(*stats),
            _ => None,
        }
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        if let Some(stats) = probe() {
            if stats.connections.active == 1 {
                break stats; // only this probe is open
            }
        }
        assert!(
            Instant::now() < deadline,
            "holders were not reaped within 10s"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(stats.connections.refused, 3);
    assert_eq!(stats.connections.opened, stats.connections.closed + 1);

    let final_stats = shut_down(addr, handle);
    assert_eq!(final_stats.connections.active, 0, "no leaked threads");
    assert_eq!(
        final_stats.connections.opened,
        final_stats.connections.closed
    );
    assert_eq!(final_stats.connections.refused, 3);
}

#[test]
fn concurrent_pipelined_clients_get_identical_in_order_answers() {
    let clients = 8;
    let (addr, handle) = start(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });

    // A deterministic pipelined mix: two predicts (served + error
    // paths), a catalog read, a malformed line, and an oversize line
    // that must be discarded as it streams in. Every response is
    // independent of server state, so all clients must read the same
    // bytes in the same order.
    let mut script = Vec::new();
    for request in [
        Request::predict(Device::TitanX, SAXPY),
        Request::Devices,
        Request::Predict {
            device: "gtx-9000".into(), // unknown id -> unknown_device
            source: "x".into(),
        },
        Request::predict(Device::TeslaP100, "x"), // known, not loaded
        Request::predict_batch(
            Device::TitanX,
            vec![SAXPY.to_string(), "not a kernel".to_string()],
        ),
    ] {
        script.extend_from_slice(request.to_json().as_bytes());
        script.push(b'\n');
    }
    script.extend_from_slice(b"not json at all\n");
    // 4 MiB + 1 of 'x': one byte past MAX_LINE_BYTES.
    script.extend(std::iter::repeat_n(b'x', (4 << 20) + 1));
    script.push(b'\n');
    let script = Arc::new(script);
    let expected_lines = 7;

    let barrier = Arc::new(Barrier::new(clients));
    let outputs: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let script = Arc::clone(&script);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("client connects");
                    barrier.wait(); // all connections open before any traffic
                    stream.write_all(&script).expect("pipelined write");
                    stream.shutdown(Shutdown::Write).expect("half-close");
                    let mut out = Vec::new();
                    stream.read_to_end(&mut out).expect("drain responses");
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let reference = String::from_utf8(outputs[0].clone()).expect("utf-8 responses");
    let lines: Vec<&str> = reference.lines().collect();
    assert_eq!(lines.len(), expected_lines, "{reference}");
    assert!(matches!(
        Response::parse(lines[0]).unwrap(),
        Response::Predict { .. }
    ));
    assert!(matches!(
        Response::parse(lines[1]).unwrap(),
        Response::Devices { .. }
    ));
    let code = |line: &str| Response::parse(line).unwrap().error().unwrap().code;
    assert_eq!(code(lines[2]), ErrorCode::UnknownDevice);
    assert_eq!(code(lines[3]), ErrorCode::DeviceNotServed);
    assert!(matches!(
        Response::parse(lines[4]).unwrap(),
        Response::PredictBatch { .. }
    ));
    assert_eq!(code(lines[5]), ErrorCode::BadRequest);
    assert_eq!(code(lines[6]), ErrorCode::BadRequest);
    assert!(
        lines[6].contains("exceeds"),
        "oversize line gets the bounded-buffer error: {}",
        lines[6]
    );

    // Byte-identical across clients: responses were never interleaved
    // across connections and always came back in request order.
    for (i, out) in outputs.iter().enumerate() {
        assert_eq!(
            out, &outputs[0],
            "client {i} read different bytes than client 0"
        );
    }

    let stats = shut_down(addr, handle);
    assert_eq!(stats.connections.active, 0, "no leaked threads");
    assert_eq!(stats.connections.opened, stats.connections.closed);
    assert_eq!(stats.connections.refused, 0);
    // 7 lines per client plus the shutdown line.
    assert_eq!(
        stats.requests.total,
        clients as u64 * expected_lines as u64 + 1
    );
}
