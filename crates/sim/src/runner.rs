//! The simulated GPU: executes kernel profiles at frequency settings
//! and produces measurements, sequentially or as a parallel sweep.

use crate::device::DeviceSpec;
use crate::noise::NoiseModel;
use crate::power::{average_power, energy_j};
use crate::sensor::{measure, Measurement, MeasurementProtocol};
use crate::timing::{execution_time, KernelDemand};
use gpufreq_kernel::{FreqConfig, KernelProfile};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Error returned when a requested configuration is not in the clock
/// table.
#[derive(Debug, Clone, PartialEq)]
pub struct UnsupportedConfig(pub FreqConfig);

impl fmt::Display for UnsupportedConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported frequency configuration {}", self.0)
    }
}

impl std::error::Error for UnsupportedConfig {}

/// A measurement normalized against the default-configuration baseline:
/// speedup (higher is better) and normalized energy (lower is better),
/// the paper's two objectives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalizedMeasurement {
    /// The raw measurement.
    pub measurement: Measurement,
    /// `t_default / t` — the paper's speedup objective (maximize).
    pub speedup: f64,
    /// `e / e_default` — the paper's normalized-energy objective
    /// (minimize).
    pub norm_energy: f64,
}

impl NormalizedMeasurement {
    /// The configuration this point was measured at.
    pub fn config(&self) -> FreqConfig {
        self.measurement.config
    }
}

/// A full characterization of one kernel: the baseline measurement at
/// the default clocks plus normalized measurements for a set of
/// configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// Kernel name.
    pub kernel: String,
    /// Measurement at the default application clocks.
    pub baseline: Measurement,
    /// Normalized measurements, one per swept configuration.
    pub points: Vec<NormalizedMeasurement>,
}

impl Characterization {
    /// Total simulated wall-clock cost of the sweep in seconds
    /// (baseline + every point).
    pub fn sim_wall_s(&self) -> f64 {
        self.baseline.sim_wall_s
            + self
                .points
                .iter()
                .map(|p| p.measurement.sim_wall_s)
                .sum::<f64>()
    }
}

/// The simulated GPU device.
///
/// Deterministic by default; attach a [`NoiseModel`] to emulate sensor
/// jitter. All methods take `&self`, so one simulator can be shared
/// across threads.
#[derive(Debug, Clone)]
pub struct GpuSimulator {
    spec: DeviceSpec,
    protocol: MeasurementProtocol,
    noise: Option<NoiseModel>,
    jobs: Option<usize>,
}

impl GpuSimulator {
    /// Simulator for `spec` with the default measurement protocol.
    pub fn new(spec: DeviceSpec) -> GpuSimulator {
        GpuSimulator {
            spec,
            protocol: MeasurementProtocol::default(),
            noise: None,
            jobs: None,
        }
    }

    /// A GTX Titan X simulator (the paper's main platform).
    pub fn titan_x() -> GpuSimulator {
        GpuSimulator::new(DeviceSpec::titan_x())
    }

    /// A Tesla P100 simulator (Fig. 4b).
    pub fn tesla_p100() -> GpuSimulator {
        GpuSimulator::new(DeviceSpec::tesla_p100())
    }

    /// A Tesla K20c simulator (the Ge et al. study platform).
    pub fn tesla_k20c() -> GpuSimulator {
        GpuSimulator::new(DeviceSpec::tesla_k20c())
    }

    /// Replace the measurement protocol.
    pub fn with_protocol(mut self, protocol: MeasurementProtocol) -> GpuSimulator {
        self.protocol = protocol;
        self
    }

    /// Attach measurement noise.
    pub fn with_noise(mut self, noise: NoiseModel) -> GpuSimulator {
        self.noise = Some(noise);
        self
    }

    /// Pin the number of worker threads [`sweep`](GpuSimulator::sweep)
    /// uses. `None` (the default) resolves to
    /// [`std::thread::available_parallelism`]; `Some(1)` makes sweeps
    /// strictly serial. Tests and CI runners with few cores use this to
    /// fix the thread count instead of inheriting the machine's. The
    /// measured results are identical either way — only wall-clock
    /// changes.
    pub fn with_jobs(mut self, jobs: Option<usize>) -> GpuSimulator {
        self.jobs = jobs;
        self
    }

    /// The configured sweep-thread override, if any.
    pub fn jobs(&self) -> Option<usize> {
        self.jobs
    }

    /// The device being simulated.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The measurement protocol in use.
    pub fn protocol(&self) -> &MeasurementProtocol {
        &self.protocol
    }

    /// Execute `profile` at `requested` clocks and measure it.
    ///
    /// The requested configuration must be advertised by the clock
    /// table; the core clock is clamped exactly as NVML does (§4.1), and
    /// the measurement reports the *effective* configuration.
    pub fn run(
        &self,
        profile: &KernelProfile,
        requested: FreqConfig,
    ) -> Result<Measurement, UnsupportedConfig> {
        let effective = self
            .spec
            .clocks
            .resolve(requested)
            .ok_or(UnsupportedConfig(requested))?;
        Ok(self.run_resolved(profile, effective))
    }

    /// Execute at the default application clocks.
    pub fn run_default(&self, profile: &KernelProfile) -> Measurement {
        let cfg = self.spec.clocks.default;
        self.run(profile, cfg)
            .expect("default configuration is always supported")
    }

    fn run_resolved(&self, profile: &KernelProfile, config: FreqConfig) -> Measurement {
        let demand = KernelDemand::from_profile(&self.spec, profile);
        let timing = execution_time(&self.spec, &demand, config);
        let power = average_power(&self.spec, &demand, config, &timing);
        let true_energy = energy_j(&power, &timing);
        debug_assert!(true_energy > 0.0);
        let mut sampler = self.noise.as_ref().map(|n| {
            // Derive a per-(kernel, config) seed so parallel sweeps are
            // deterministic regardless of scheduling.
            let mut seed = n.seed ^ (config.core_mhz as u64) << 32 ^ config.mem_mhz as u64;
            for b in profile.name.bytes() {
                seed = seed.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
            }
            NoiseModel { seed, ..n.clone() }.sampler()
        });
        measure(
            &self.protocol,
            config,
            timing.total_s,
            power.total_w(),
            sampler.as_mut(),
        )
    }

    /// Measure `profile` at every configuration in `configs`, in
    /// parallel across worker threads (scoped threads pulling from an
    /// atomic work queue). Results are in input order.
    pub fn sweep(
        &self,
        profile: &KernelProfile,
        configs: &[FreqConfig],
    ) -> Result<Vec<Measurement>, UnsupportedConfig> {
        // Validate up front so the parallel phase is infallible.
        let resolved: Vec<FreqConfig> = configs
            .iter()
            .map(|&c| self.spec.clocks.resolve(c).ok_or(UnsupportedConfig(c)))
            .collect::<Result<_, _>>()?;
        let threads = self
            .jobs
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()))
            .clamp(1, 16)
            .min(resolved.len().max(1));
        if threads <= 1 {
            // Serial fast path: no worker threads at all.
            return Ok(resolved
                .into_iter()
                .map(|c| self.run_resolved(profile, c))
                .collect());
        }
        let next = AtomicUsize::new(0);
        let indexed: Vec<(usize, Measurement)> = std::thread::scope(|s| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            // ordering: work distribution only — the
                            // RMW hands each index to exactly one
                            // worker; measurements are published by
                            // the scope join, not by this counter.
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= resolved.len() {
                                break;
                            }
                            local.push((i, self.run_resolved(profile, resolved[i])));
                        }
                        local
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("sweep worker panicked"))
                .collect()
        });
        let mut out: Vec<Option<Measurement>> = vec![None; resolved.len()];
        for (i, m) in indexed {
            out[i] = Some(m);
        }
        Ok(out
            .into_iter()
            .map(|m| m.expect("all slots filled"))
            .collect())
    }

    /// Sweep every *actual* configuration of the device and normalize
    /// against the default baseline — the measured ground truth used
    /// throughout the evaluation (Figs. 1, 5, 8).
    pub fn characterize(&self, profile: &KernelProfile) -> Characterization {
        let configs = self.spec.clocks.actual_configs();
        self.characterize_at(profile, &configs)
    }

    /// Characterize against an explicit configuration list.
    pub fn characterize_at(
        &self,
        profile: &KernelProfile,
        configs: &[FreqConfig],
    ) -> Characterization {
        let baseline = self.run_default(profile);
        let measurements = self
            .sweep(profile, configs)
            .expect("actual configurations are supported");
        let points = measurements
            .into_iter()
            .map(|m| NormalizedMeasurement {
                speedup: baseline.time_ms / m.time_ms,
                norm_energy: m.energy_j / baseline.energy_j,
                measurement: m,
            })
            .collect();
        Characterization {
            kernel: profile.name.clone(),
            baseline,
            points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_kernel::parser::parse;
    use gpufreq_kernel::{AnalysisConfig, LaunchConfig};

    fn profile(src: &str) -> KernelProfile {
        let prog = parse(src).unwrap();
        KernelProfile::from_kernel(
            prog.first_kernel().unwrap(),
            &AnalysisConfig::default(),
            LaunchConfig::new(1 << 20, 256),
        )
        .unwrap()
    }

    fn saxpy() -> KernelProfile {
        profile(
            "__kernel void saxpy(__global float* x, __global float* y, float a) {
                uint i = get_global_id(0);
                y[i] = a * x[i] + y[i];
            }",
        )
    }

    #[test]
    fn run_reports_effective_config() {
        let sim = GpuSimulator::titan_x();
        let m = sim.run(&saxpy(), FreqConfig::new(3505, 1392)).unwrap();
        assert_eq!(m.config.core_mhz, 1202, "clamp quirk must apply");
    }

    #[test]
    fn unsupported_config_is_an_error() {
        let sim = GpuSimulator::titan_x();
        assert!(sim.run(&saxpy(), FreqConfig::new(999, 999)).is_err());
    }

    #[test]
    fn sweep_matches_sequential_runs() {
        let sim = GpuSimulator::titan_x();
        let p = saxpy();
        let configs = sim.spec().clocks.sample_configs(12);
        let swept = sim.sweep(&p, &configs).unwrap();
        for (cfg, m) in configs.iter().zip(&swept) {
            let single = sim.run(&p, *cfg).unwrap();
            assert_eq!(*m, single, "parallel sweep must equal sequential run");
        }
    }

    #[test]
    fn characterization_baseline_is_unit() {
        let sim = GpuSimulator::titan_x();
        let c = sim.characterize(&saxpy());
        let default = sim.spec().clocks.default;
        let at_default = c
            .points
            .iter()
            .find(|p| p.config() == default)
            .expect("default in sweep");
        assert!((at_default.speedup - 1.0).abs() < 1e-9);
        assert!((at_default.norm_energy - 1.0).abs() < 1e-9);
        assert_eq!(c.points.len(), 177);
    }

    #[test]
    fn characterization_wall_clock_accumulates() {
        let sim = GpuSimulator::titan_x();
        let c = sim.characterize(&saxpy());
        assert!(c.sim_wall_s() > c.baseline.sim_wall_s * c.points.len() as f64 * 0.5);
    }

    #[test]
    fn sweep_results_are_identical_for_any_job_count() {
        // Regression: `sweep` used to hardcode available_parallelism
        // with no override, so CI could not pin the thread count.
        let p = saxpy();
        let configs = GpuSimulator::titan_x().spec().clocks.sample_configs(10);
        let baseline = GpuSimulator::titan_x()
            .with_jobs(Some(1))
            .sweep(&p, &configs)
            .unwrap();
        for jobs in [None, Some(2), Some(4), Some(64)] {
            let sim = GpuSimulator::titan_x().with_jobs(jobs);
            assert_eq!(sim.jobs(), jobs);
            assert_eq!(sim.sweep(&p, &configs).unwrap(), baseline, "jobs {jobs:?}");
        }
        // A zero override clamps to one worker rather than hanging.
        let zero = GpuSimulator::titan_x().with_jobs(Some(0));
        assert_eq!(zero.sweep(&p, &configs).unwrap(), baseline);
    }

    #[test]
    fn noisy_sweep_is_deterministic() {
        let sim = GpuSimulator::titan_x().with_noise(NoiseModel::new(0.01, 0.02, 77));
        let p = saxpy();
        let configs = sim.spec().clocks.sample_configs(8);
        let a = sim.sweep(&p, &configs).unwrap();
        let b = sim.sweep(&p, &configs).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn p100_runs_its_default() {
        let sim = GpuSimulator::tesla_p100();
        let m = sim.run_default(&saxpy());
        assert_eq!(m.config.mem_mhz, 715);
        assert!(m.energy_j > 0.0);
    }
}
