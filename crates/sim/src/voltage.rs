//! DVFS voltage curve.
//!
//! GPUs scale the core voltage with the core frequency: below a knee
//! frequency the chip already runs at its minimum stable voltage, above
//! it the voltage rises roughly linearly up to the maximum boost
//! voltage. This non-linearity is what produces the parabola-with-
//! minimum normalized-energy curves the paper observes (§1.1, §3.4):
//! below the knee, raising the clock is "free" in voltage and energy
//! per task falls; above it, dynamic power grows with `V²·f` faster
//! than runtime shrinks.

use serde::{Deserialize, Serialize};

/// Piecewise-linear core voltage as a function of core frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageCurve {
    /// Minimum stable voltage (V), held below the knee.
    pub v_min: f64,
    /// Voltage at `f_max` (V).
    pub v_max: f64,
    /// Knee frequency (MHz) below which `v_min` applies.
    pub f_knee_mhz: f64,
    /// Frequency (MHz) at which `v_max` is reached.
    pub f_max_mhz: f64,
}

impl VoltageCurve {
    /// Maxwell-like curve for the GTX Titan X: 0.85 V floor up to
    /// ~640 MHz, rising to ~1.212 V at 1392 MHz.
    pub fn titan_x() -> VoltageCurve {
        VoltageCurve {
            v_min: 0.85,
            v_max: 1.212,
            f_knee_mhz: 640.0,
            f_max_mhz: 1392.0,
        }
    }

    /// Pascal-like curve for the Tesla P100.
    pub fn tesla_p100() -> VoltageCurve {
        VoltageCurve {
            v_min: 0.80,
            v_max: 1.15,
            f_knee_mhz: 750.0,
            f_max_mhz: 1480.0,
        }
    }

    /// Voltage (V) at `f_core_mhz`. Clamped to `[v_min, v_max]` outside
    /// the curve's range.
    pub fn voltage(&self, f_core_mhz: f64) -> f64 {
        if f_core_mhz <= self.f_knee_mhz {
            return self.v_min;
        }
        let t = (f_core_mhz - self.f_knee_mhz) / (self.f_max_mhz - self.f_knee_mhz);
        (self.v_min + t * (self.v_max - self.v_min)).min(self.v_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_below_knee() {
        let v = VoltageCurve::titan_x();
        assert_eq!(v.voltage(135.0), v.v_min);
        assert_eq!(v.voltage(640.0), v.v_min);
    }

    #[test]
    fn monotone_above_knee() {
        let v = VoltageCurve::titan_x();
        let mut prev = v.voltage(640.0);
        for f in (650..=1392).step_by(50) {
            let now = v.voltage(f as f64);
            assert!(now >= prev, "voltage must be non-decreasing");
            prev = now;
        }
        assert!((v.voltage(1392.0) - v.v_max).abs() < 1e-12);
    }

    #[test]
    fn clamped_above_max() {
        let v = VoltageCurve::titan_x();
        assert_eq!(v.voltage(2000.0), v.v_max);
    }

    #[test]
    fn default_clock_voltage_is_mid_range() {
        let v = VoltageCurve::titan_x();
        let at_default = v.voltage(1001.0);
        assert!(at_default > v.v_min && at_default < v.v_max);
    }
}
