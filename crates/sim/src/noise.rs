//! Seeded measurement-noise model.
//!
//! Real NVML measurements jitter run to run (sensor quantization,
//! temperature drift, other board activity). The simulator is
//! deterministic by default — which makes the whole reproduction
//! deterministic — but tests and robustness experiments can inject
//! multiplicative Gaussian noise on time and power through this model.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Multiplicative Gaussian noise on measured time and power.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Relative standard deviation of execution time (e.g. `0.01` = 1%).
    pub time_sigma: f64,
    /// Relative standard deviation of power samples.
    pub power_sigma: f64,
    /// RNG seed; the same seed reproduces the same noise sequence.
    pub seed: u64,
}

impl NoiseModel {
    /// Noise model with the given relative sigmas and seed.
    pub fn new(time_sigma: f64, power_sigma: f64, seed: u64) -> NoiseModel {
        NoiseModel {
            time_sigma,
            power_sigma,
            seed,
        }
    }

    /// A stateful sampler for one measurement session.
    pub fn sampler(&self) -> NoiseSampler {
        NoiseSampler {
            rng: SmallRng::seed_from_u64(self.seed),
            time_sigma: self.time_sigma,
            power_sigma: self.power_sigma,
        }
    }
}

/// Stateful noise source produced by [`NoiseModel::sampler`].
#[derive(Debug, Clone)]
pub struct NoiseSampler {
    rng: SmallRng,
    time_sigma: f64,
    power_sigma: f64,
}

impl NoiseSampler {
    /// Perturb an execution time (always returns a positive value).
    pub fn perturb_time(&mut self, t: f64) -> f64 {
        (t * (1.0 + self.time_sigma * self.standard_normal())).max(t * 0.1)
    }

    /// Perturb one power sample (always returns a positive value).
    pub fn perturb_power(&mut self, p: f64) -> f64 {
        (p * (1.0 + self.power_sigma * self.standard_normal())).max(p * 0.1)
    }

    /// Box-Muller standard normal draw.
    fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_identity() {
        let mut s = NoiseModel::new(0.0, 0.0, 42).sampler();
        assert_eq!(s.perturb_time(1.5), 1.5);
        assert_eq!(s.perturb_power(200.0), 200.0);
    }

    #[test]
    fn same_seed_same_sequence() {
        let m = NoiseModel::new(0.05, 0.05, 7);
        let mut a = m.sampler();
        let mut b = m.sampler();
        for _ in 0..32 {
            assert_eq!(a.perturb_time(1.0), b.perturb_time(1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NoiseModel::new(0.05, 0.05, 1).sampler();
        let mut b = NoiseModel::new(0.05, 0.05, 2).sampler();
        let va: Vec<f64> = (0..8).map(|_| a.perturb_time(1.0)).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.perturb_time(1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn noise_is_roughly_unbiased() {
        let mut s = NoiseModel::new(0.02, 0.02, 99).sampler();
        let n = 4000;
        let mean: f64 = (0..n).map(|_| s.perturb_power(100.0)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn outputs_stay_positive() {
        let mut s = NoiseModel::new(5.0, 5.0, 3).sampler(); // absurd sigma
        for _ in 0..256 {
            assert!(s.perturb_time(1.0) > 0.0);
            assert!(s.perturb_power(1.0) > 0.0);
        }
    }
}
