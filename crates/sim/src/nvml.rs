//! An NVML-like management facade over the simulator.
//!
//! Mirrors the subset of the NVIDIA Management Library the paper relies
//! on (§4.1): querying supported memory/graphics clocks, setting and
//! resetting application clocks, and polling board power. The facade
//! also reproduces the quirk the authors report: configurations
//! *advertised* as supported whose core clock silently clamps to
//! 1202 MHz when applied.
//!
//! The API is deliberately shaped like the C library (`device_*`
//! methods, millwatt power readings) so that code written against it
//! reads like real NVML tooling.

use crate::device::DeviceSpec;
use crate::power::average_power;
use crate::timing::{execution_time, KernelDemand};
use gpufreq_kernel::{FreqConfig, KernelProfile};
use std::fmt;
use std::sync::Mutex;

/// Errors mirroring NVML return codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NvmlError {
    /// The clock combination is not advertised (`NVML_ERROR_INVALID_ARGUMENT`).
    InvalidArgument,
    /// The feature is not available on this device (`NVML_ERROR_NOT_SUPPORTED`).
    NotSupported,
}

impl fmt::Display for NvmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvmlError::InvalidArgument => f.write_str("NVML: invalid argument"),
            NvmlError::NotSupported => f.write_str("NVML: not supported"),
        }
    }
}

impl std::error::Error for NvmlError {}

struct DeviceState {
    applied: FreqConfig,
    active: Option<KernelProfile>,
}

/// Handle to one simulated device, NVML-style.
pub struct NvmlDevice {
    spec: DeviceSpec,
    state: Mutex<DeviceState>,
}

impl NvmlDevice {
    /// Open a device handle.
    pub fn new(spec: DeviceSpec) -> NvmlDevice {
        let applied = spec.clocks.default;
        NvmlDevice {
            spec,
            state: Mutex::new(DeviceState {
                applied,
                active: None,
            }),
        }
    }

    /// Device name (`nvmlDeviceGetName`).
    pub fn device_get_name(&self) -> &str {
        &self.spec.name
    }

    /// Supported memory clocks in MHz, ascending
    /// (`nvmlDeviceGetSupportedMemoryClocks`).
    pub fn device_get_supported_memory_clocks(&self) -> Vec<u32> {
        self.spec.clocks.supported_memory_clocks()
    }

    /// Core clocks advertised for `mem_mhz`
    /// (`nvmlDeviceGetSupportedGraphicsClocks`). Includes the clocks
    /// that will silently clamp when applied — exactly like the real
    /// library.
    pub fn device_get_supported_graphics_clocks(
        &self,
        mem_mhz: u32,
    ) -> Result<Vec<u32>, NvmlError> {
        self.spec
            .clocks
            .domain(mem_mhz)
            .map(|d| d.advertised_core_mhz.clone())
            .ok_or(NvmlError::InvalidArgument)
    }

    /// Set application clocks (`nvmlDeviceSetApplicationsClocks`).
    ///
    /// Accepts any *advertised* combination; the core clock that is
    /// actually applied may be lower (the 1202 MHz clamp of §4.1).
    pub fn device_set_applications_clocks(
        &self,
        mem_mhz: u32,
        core_mhz: u32,
    ) -> Result<(), NvmlError> {
        let effective = self
            .spec
            .clocks
            .resolve(FreqConfig::new(mem_mhz, core_mhz))
            .ok_or(NvmlError::InvalidArgument)?;
        self.state.lock().expect("nvml state lock poisoned").applied = effective;
        Ok(())
    }

    /// The clocks currently applied (`nvmlDeviceGetApplicationsClock`) —
    /// reading this after a set is how the clamp quirk is observed.
    pub fn device_get_applications_clocks(&self) -> FreqConfig {
        self.state.lock().expect("nvml state lock poisoned").applied
    }

    /// Restore default application clocks
    /// (`nvmlDeviceResetApplicationsClocks`).
    pub fn device_reset_applications_clocks(&self) {
        self.state.lock().expect("nvml state lock poisoned").applied = self.spec.clocks.default;
    }

    /// Mark a kernel as currently executing on the device (the
    /// simulator's stand-in for launching real work).
    pub fn set_active_workload(&self, profile: Option<KernelProfile>) {
        self.state.lock().expect("nvml state lock poisoned").active = profile;
    }

    /// Instantaneous board power draw in **milliwatts**
    /// (`nvmlDeviceGetPowerUsage`). Idle power when no workload is
    /// active.
    pub fn device_get_power_usage(&self) -> u32 {
        let state = self.state.lock().expect("nvml state lock poisoned");
        let cfg = state.applied;
        let watts = match &state.active {
            Some(profile) => {
                let demand = KernelDemand::from_profile(&self.spec, profile);
                let timing = execution_time(&self.spec, &demand, cfg);
                average_power(&self.spec, &demand, cfg, &timing).total_w()
            }
            None => {
                let v = self.spec.voltage.voltage(cfg.core_mhz as f64);
                self.spec.board_power_w
                    + self.spec.leakage_w_per_v * v
                    + self.spec.mem_static_w_per_ghz * cfg.mem_mhz as f64 / 1000.0
            }
        };
        (watts * 1000.0).round() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_kernel::parser::parse;
    use gpufreq_kernel::{AnalysisConfig, LaunchConfig};

    fn device() -> NvmlDevice {
        NvmlDevice::new(DeviceSpec::titan_x())
    }

    fn busy_profile() -> KernelProfile {
        let prog = parse(
            "__kernel void k(__global float* x) {
                uint i = get_global_id(0);
                float v = x[i];
                for (int it = 0; it < 128; it += 1) { v = v * 1.5f + 0.5f; }
                x[i] = v;
            }",
        )
        .unwrap();
        KernelProfile::from_kernel(
            prog.first_kernel().unwrap(),
            &AnalysisConfig::default(),
            LaunchConfig::new(1 << 20, 256),
        )
        .unwrap()
    }

    #[test]
    fn query_supported_clocks() {
        let d = device();
        assert_eq!(
            d.device_get_supported_memory_clocks(),
            vec![405, 810, 3304, 3505]
        );
        let g = d.device_get_supported_graphics_clocks(3505).unwrap();
        assert!(g.contains(&1001));
        assert!(g.contains(&1392)); // advertised even though it clamps
        assert_eq!(
            d.device_get_supported_graphics_clocks(123),
            Err(NvmlError::InvalidArgument)
        );
    }

    #[test]
    fn set_clocks_applies_clamp_quirk() {
        let d = device();
        d.device_set_applications_clocks(3505, 1392).unwrap();
        let applied = d.device_get_applications_clocks();
        assert_eq!(applied.core_mhz, 1202, "requested 1392, silently got 1202");
        d.device_reset_applications_clocks();
        assert_eq!(
            d.device_get_applications_clocks(),
            FreqConfig::new(3505, 1001)
        );
    }

    #[test]
    fn invalid_combination_rejected() {
        let d = device();
        assert_eq!(
            d.device_set_applications_clocks(405, 810),
            Err(NvmlError::InvalidArgument),
            "mem-L caps at 405 MHz core"
        );
    }

    #[test]
    fn power_usage_idle_vs_busy() {
        let d = device();
        let idle = d.device_get_power_usage();
        d.set_active_workload(Some(busy_profile()));
        let busy = d.device_get_power_usage();
        assert!(busy > idle, "busy {busy} mW should exceed idle {idle} mW");
        assert!(
            idle > 20_000,
            "idle power should be tens of watts, got {idle} mW"
        );
    }

    #[test]
    fn power_scales_with_applied_clocks() {
        let d = device();
        d.set_active_workload(Some(busy_profile()));
        let clocks = d.device_get_supported_graphics_clocks(3505).unwrap();
        let mid = clocks[clocks.len() / 3];
        d.device_set_applications_clocks(3505, mid).unwrap();
        let lo = d.device_get_power_usage();
        d.device_set_applications_clocks(3505, 1202).unwrap();
        let hi = d.device_get_power_usage();
        assert!(hi > lo);
    }

    #[test]
    fn device_name() {
        assert_eq!(device().device_get_name(), "GTX Titan X");
    }
}
