//! Clock-domain tables: which `(memory, core)` frequency configurations
//! a device supports.
//!
//! The tables encode the structure the paper reports for the NVIDIA GTX
//! Titan X (§1, §4.1, Fig. 4a):
//!
//! * four memory clocks — 405 (`L`), 810 (`l`), 3304 (`h`), 3505 (`H`) MHz;
//! * **219** advertised `(mem, core)` configurations in total;
//! * the NVML quirk: core clocks advertised above 1202 MHz for `l`/`h`/`H`
//!   are silently clamped to 1202 MHz (the "gray points" of Fig. 4a);
//! * after clamping, the *actual* distinct core clocks per domain are
//!   **6** (`L`, up to 405 MHz only), **71** (`l`), **50** (`h`) and
//!   **50** (`H`);
//! * the default application-clock configuration is mem 3505 / core 1001.
//!
//! A Tesla P100 table (single memory domain, Fig. 4b) is provided for
//! the portability experiment.

use gpufreq_kernel::FreqConfig;
use serde::{Deserialize, Serialize};

/// Labels of the four Titan X memory domains, ordered low to high.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MemDomain {
    /// `mem-L` = 405 MHz.
    L,
    /// `mem-l` = 810 MHz.
    Lo,
    /// `mem-h` = 3304 MHz.
    Hi,
    /// `mem-H` = 3505 MHz.
    H,
}

impl MemDomain {
    /// All four domains, low to high.
    pub const ALL: [MemDomain; 4] = [MemDomain::L, MemDomain::Lo, MemDomain::Hi, MemDomain::H];

    /// Paper-style label (`Mem-L`, `Mem-l`, `Mem-h`, `Mem-H`).
    pub fn label(self) -> &'static str {
        match self {
            MemDomain::L => "Mem-L",
            MemDomain::Lo => "Mem-l",
            MemDomain::Hi => "Mem-h",
            MemDomain::H => "Mem-H",
        }
    }

    /// The Titan X memory clock of this domain in MHz.
    pub fn titan_x_mhz(self) -> u32 {
        match self {
            MemDomain::L => 405,
            MemDomain::Lo => 810,
            MemDomain::Hi => 3304,
            MemDomain::H => 3505,
        }
    }

    /// Map a Titan X memory clock back to its domain.
    pub fn from_mhz(mem_mhz: u32) -> Option<MemDomain> {
        MemDomain::ALL
            .iter()
            .copied()
            .find(|d| d.titan_x_mhz() == mem_mhz)
    }
}

/// One memory domain: its clock, the core clocks NVML advertises for it,
/// and the clamp threshold above which advertised clocks are silently
/// reduced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryDomainClocks {
    /// Memory clock in MHz.
    pub mem_mhz: u32,
    /// Core clocks NVML reports as supported, ascending.
    pub advertised_core_mhz: Vec<u32>,
    /// Advertised core clocks above this value are actually set to it.
    pub clamp_core_mhz: Option<u32>,
}

impl MemoryDomainClocks {
    /// The core clock that is actually applied when `core_mhz` is requested.
    pub fn effective_core(&self, core_mhz: u32) -> u32 {
        match self.clamp_core_mhz {
            Some(clamp) => core_mhz.min(clamp),
            None => core_mhz,
        }
    }

    /// Distinct core clocks that can actually be applied, ascending.
    pub fn actual_core_mhz(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .advertised_core_mhz
            .iter()
            .map(|&c| self.effective_core(c))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// The full clock table of a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockTable {
    /// Per-memory-domain supported core clocks, ascending by memory clock.
    pub domains: Vec<MemoryDomainClocks>,
    /// Default application clocks (the baseline configuration).
    pub default: FreqConfig,
}

impl ClockTable {
    /// Supported memory clocks, ascending (NVML
    /// `nvmlDeviceGetSupportedMemoryClocks`).
    pub fn supported_memory_clocks(&self) -> Vec<u32> {
        self.domains.iter().map(|d| d.mem_mhz).collect()
    }

    /// The domain entry for `mem_mhz`, if supported.
    pub fn domain(&self, mem_mhz: u32) -> Option<&MemoryDomainClocks> {
        self.domains.iter().find(|d| d.mem_mhz == mem_mhz)
    }

    /// All advertised `(mem, core)` configurations.
    pub fn advertised_configs(&self) -> Vec<FreqConfig> {
        self.domains
            .iter()
            .flat_map(|d| {
                d.advertised_core_mhz
                    .iter()
                    .map(move |&c| FreqConfig::new(d.mem_mhz, c))
            })
            .collect()
    }

    /// All *actually settable* configurations after clamping, deduped.
    pub fn actual_configs(&self) -> Vec<FreqConfig> {
        self.domains
            .iter()
            .flat_map(|d| {
                d.actual_core_mhz()
                    .into_iter()
                    .map(move |c| FreqConfig::new(d.mem_mhz, c))
            })
            .collect()
    }

    /// Actual configurations of a single memory domain.
    pub fn actual_configs_for(&self, mem_mhz: u32) -> Vec<FreqConfig> {
        self.domain(mem_mhz)
            .map(|d| {
                d.actual_core_mhz()
                    .into_iter()
                    .map(|c| FreqConfig::new(d.mem_mhz, c))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The configuration that is actually applied when requesting `cfg`
    /// (clamping the core clock), or `None` if the memory clock or the
    /// advertised core clock is unsupported.
    pub fn resolve(&self, cfg: FreqConfig) -> Option<FreqConfig> {
        let d = self.domain(cfg.mem_mhz)?;
        if !d.advertised_core_mhz.contains(&cfg.core_mhz) {
            return None;
        }
        Some(FreqConfig::new(cfg.mem_mhz, d.effective_core(cfg.core_mhz)))
    }

    /// Deterministic stratified sample of `n` actual configurations for
    /// training and evaluation (§3.3 uses 40).
    ///
    /// Allocation is water-filling: any domain smaller than its fair
    /// share contributes *all* of its configurations (the paper's
    /// sample includes all six mem-L settings), and the remaining
    /// budget is split evenly over the larger domains, with evenly
    /// spaced core clocks inside each so domain extremes are always
    /// included.
    pub fn sample_configs(&self, n: usize) -> Vec<FreqConfig> {
        let per_domain: Vec<Vec<FreqConfig>> = self
            .domains
            .iter()
            .map(|d| self.actual_configs_for(d.mem_mhz))
            .collect();
        let total: usize = per_domain.iter().map(|v| v.len()).sum();
        if n == 0 || total == 0 {
            return Vec::new();
        }
        if n >= total {
            return per_domain.concat();
        }
        // Water-filling: saturate small domains, split the rest evenly.
        let mut alloc = vec![0usize; per_domain.len()];
        let mut active: Vec<usize> = (0..per_domain.len()).collect();
        let mut budget = n;
        loop {
            let fair = budget / active.len().max(1);
            let saturated: Vec<usize> = active
                .iter()
                .copied()
                .filter(|&i| per_domain[i].len() <= fair)
                .collect();
            if saturated.is_empty() {
                // Distribute the budget over the remaining domains,
                // spreading the remainder from the largest domain down.
                let mut order = active.clone();
                order.sort_by_key(|&i| std::cmp::Reverse(per_domain[i].len()));
                for (rank, &i) in order.iter().enumerate() {
                    alloc[i] = fair + usize::from(rank < budget - fair * active.len());
                }
                break;
            }
            for &i in &saturated {
                alloc[i] = per_domain[i].len();
                budget -= alloc[i];
            }
            active.retain(|i| !saturated.contains(i));
            if active.is_empty() {
                break;
            }
        }
        let mut out = Vec::with_capacity(n);
        for (configs, k) in per_domain.iter().zip(alloc) {
            out.extend(evenly_spaced(configs, k));
        }
        out
    }
}

fn evenly_spaced(v: &[FreqConfig], k: usize) -> Vec<FreqConfig> {
    if k == 0 || v.is_empty() {
        return Vec::new();
    }
    if k >= v.len() {
        return v.to_vec();
    }
    if k == 1 {
        return vec![v[v.len() - 1]];
    }
    (0..k).map(|i| v[i * (v.len() - 1) / (k - 1)]).collect()
}

/// Rounded, strictly increasing list of `n` clocks spanning `[lo, hi]`,
/// with each clock in `force` replacing its nearest neighbour (used to
/// guarantee landmark clocks such as the 1001 MHz default appear).
fn clock_list(lo: u32, hi: u32, n: usize, force: &[u32]) -> Vec<u32> {
    assert!(n >= 2 && hi > lo);
    let mut v: Vec<u32> = (0..n)
        .map(|i| lo + ((hi - lo) as f64 * i as f64 / (n - 1) as f64).round() as u32)
        .collect();
    for &f in force {
        let (idx, _) = v
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| c.abs_diff(f))
            .expect("non-empty clock list");
        v[idx] = f;
    }
    v.sort_unstable();
    v.dedup();
    assert_eq!(v.len(), n, "forced clocks must not collide");
    v
}

/// Core clock above which `l`/`h`/`H` requests are clamped on the Titan X.
pub const TITAN_X_CLAMP_MHZ: u32 = 1202;

/// The Titan X default application clocks (mem 3505, core 1001).
pub const TITAN_X_DEFAULT: FreqConfig = FreqConfig {
    mem_mhz: 3505,
    core_mhz: 1001,
};

/// Build the GTX Titan X clock table described in §1 / §4.1 / Fig. 4a.
pub fn titan_x_clock_table() -> ClockTable {
    // mem-L: six low core clocks only, no clamping headroom.
    let mem_l_low = MemoryDomainClocks {
        mem_mhz: 405,
        advertised_core_mhz: vec![135, 189, 243, 297, 351, 405],
        clamp_core_mhz: None,
    };
    // Advertised-but-clamped tail shared by the three upper domains:
    // 14 clocks in (1202, 1392].
    let clamped_tail = clock_list(1215, 1392, 14, &[]);
    // mem-l: 71 actual core clocks in [135, 1202] + the clamped tail
    // (85 advertised).
    let mut adv_l = clock_list(135, TITAN_X_CLAMP_MHZ, 71, &[1001]);
    adv_l.extend(&clamped_tail);
    let mem_l = MemoryDomainClocks {
        mem_mhz: 810,
        advertised_core_mhz: adv_l,
        clamp_core_mhz: Some(TITAN_X_CLAMP_MHZ),
    };
    // mem-h / mem-H: 50 actual core clocks in [135, 1202] + the clamped
    // tail (64 advertised each). 1001 (the default) is forced into the list.
    let mut adv_h = clock_list(135, TITAN_X_CLAMP_MHZ, 50, &[1001]);
    adv_h.extend(&clamped_tail);
    let mem_h = MemoryDomainClocks {
        mem_mhz: 3304,
        advertised_core_mhz: adv_h.clone(),
        clamp_core_mhz: Some(TITAN_X_CLAMP_MHZ),
    };
    let mem_hh = MemoryDomainClocks {
        mem_mhz: 3505,
        advertised_core_mhz: adv_h,
        clamp_core_mhz: Some(TITAN_X_CLAMP_MHZ),
    };
    ClockTable {
        domains: vec![mem_l_low, mem_l, mem_h, mem_hh],
        default: TITAN_X_DEFAULT,
    }
}

/// Build the Tesla P100 clock table of Fig. 4b: a single 715 MHz memory
/// domain with a dense range of core clocks and no clamp quirk.
pub fn tesla_p100_clock_table() -> ClockTable {
    let cores = clock_list(544, 1328, 61, &[1189]);
    ClockTable {
        domains: vec![MemoryDomainClocks {
            mem_mhz: 715,
            advertised_core_mhz: cores,
            clamp_core_mhz: None,
        }],
        default: FreqConfig::new(715, 1189),
    }
}

/// Build a Tesla K20c clock table (the platform of Ge et al., which
/// the paper's related work discusses): two memory clocks (2600 MHz
/// GDDR5 and a 324 MHz power-save state) with a small set of core
/// clocks each — much coarser tunability than the Titan X.
pub fn tesla_k20c_clock_table() -> ClockTable {
    ClockTable {
        domains: vec![
            MemoryDomainClocks {
                mem_mhz: 324,
                advertised_core_mhz: vec![324],
                clamp_core_mhz: None,
            },
            MemoryDomainClocks {
                mem_mhz: 2600,
                advertised_core_mhz: vec![614, 640, 666, 705, 758],
                clamp_core_mhz: None,
            },
        ],
        default: FreqConfig::new(2600, 705),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_x_has_four_memory_domains() {
        let t = titan_x_clock_table();
        assert_eq!(t.supported_memory_clocks(), vec![405, 810, 3304, 3505]);
    }

    #[test]
    fn titan_x_advertises_219_configs() {
        // The paper's headline count: 219 possible configurations (§1).
        let t = titan_x_clock_table();
        assert_eq!(t.advertised_configs().len(), 219);
    }

    #[test]
    fn titan_x_actual_core_counts_match_paper() {
        // §4.1: mem-L supports 6 core clocks, mem-l 71, mem-h/H 50 each.
        let t = titan_x_clock_table();
        assert_eq!(t.actual_configs_for(405).len(), 6);
        assert_eq!(t.actual_configs_for(810).len(), 71);
        assert_eq!(t.actual_configs_for(3304).len(), 50);
        assert_eq!(t.actual_configs_for(3505).len(), 50);
        assert_eq!(t.actual_configs().len(), 177);
    }

    #[test]
    fn clamp_quirk_reduces_high_requests() {
        let t = titan_x_clock_table();
        let resolved = t.resolve(FreqConfig::new(3505, 1392)).unwrap();
        assert_eq!(resolved.core_mhz, TITAN_X_CLAMP_MHZ);
        // mem-L has no headroom to clamp.
        assert!(t.resolve(FreqConfig::new(405, 405)).is_some());
        assert!(t.resolve(FreqConfig::new(405, 1392)).is_none());
    }

    #[test]
    fn default_config_is_supported() {
        let t = titan_x_clock_table();
        let d = t.resolve(t.default).unwrap();
        assert_eq!(d, TITAN_X_DEFAULT);
        assert!(t.actual_configs().contains(&TITAN_X_DEFAULT));
    }

    #[test]
    fn mem_l_caps_at_405_core() {
        let t = titan_x_clock_table();
        let max_core = t
            .actual_configs_for(405)
            .iter()
            .map(|c| c.core_mhz)
            .max()
            .unwrap();
        assert_eq!(max_core, 405);
    }

    #[test]
    fn unsupported_memory_clock_rejected() {
        let t = titan_x_clock_table();
        assert!(t.resolve(FreqConfig::new(1234, 800)).is_none());
    }

    #[test]
    fn sample_40_is_stratified() {
        let t = titan_x_clock_table();
        let s = t.sample_configs(40);
        assert_eq!(s.len(), 40);
        // All six mem-L configurations are included (the paper's
        // training set contains "only six samples for mem-L" — i.e.
        // all of them).
        assert_eq!(s.iter().filter(|c| c.mem_mhz == 405).count(), 6);
        for mem in [810, 3304, 3505] {
            let k = s.iter().filter(|c| c.mem_mhz == mem).count();
            assert!(k >= 10, "domain {mem} got only {k} samples");
        }
        // Extremes of each sampled domain are present.
        assert!(s.contains(&FreqConfig::new(810, 135)));
        assert!(s.contains(&FreqConfig::new(810, 1202)));
        assert!(s.contains(&FreqConfig::new(405, 405)));
        // Deterministic.
        assert_eq!(s, t.sample_configs(40));
    }

    #[test]
    fn sample_all_returns_everything() {
        let t = titan_x_clock_table();
        assert_eq!(t.sample_configs(10_000).len(), 177);
        assert_eq!(t.sample_configs(0).len(), 0);
    }

    #[test]
    fn p100_single_domain() {
        let t = tesla_p100_clock_table();
        assert_eq!(t.supported_memory_clocks(), vec![715]);
        assert_eq!(t.actual_configs().len(), 61);
        assert!(t.resolve(t.default).is_some());
    }

    #[test]
    fn clock_list_forces_landmarks() {
        let v = clock_list(135, 1202, 50, &[1001]);
        assert_eq!(v.len(), 50);
        assert!(v.contains(&1001));
        assert_eq!(v[0], 135);
        assert_eq!(*v.last().unwrap(), 1202);
    }

    #[test]
    fn domain_labels() {
        assert_eq!(MemDomain::from_mhz(3505), Some(MemDomain::H));
        assert_eq!(MemDomain::from_mhz(810), Some(MemDomain::Lo));
        assert_eq!(MemDomain::from_mhz(999), None);
        assert_eq!(MemDomain::H.label(), "Mem-H");
    }
}
