//! Device models: micro-architectural and electrical parameters of the
//! simulated GPUs.
//!
//! The numbers are calibrated to public GTX Titan X (Maxwell, GM200)
//! and Tesla P100 (Pascal, GP100) specifications. Absolute fidelity is
//! not the goal — what matters for the reproduction is that the model
//! exposes the *mechanisms* the paper studies: a compute datapath at
//! the core clock, a memory system at the memory clock, and a
//! `V²·f`-shaped dynamic-power term on the core domain.

use crate::clocks::{tesla_p100_clock_table, titan_x_clock_table, ClockTable};
use crate::voltage::VoltageCurve;
use gpufreq_kernel::ir::InstrClass;
use serde::{Deserialize, Serialize};

/// Per-instruction-class issue cost in core cycles per work-item
/// (reciprocal-throughput, not latency — the SMs are assumed to have
/// enough occupancy to hide latency, which holds for the paper's
/// throughput-oriented workloads).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpiTable {
    costs: [f64; 14],
}

impl CpiTable {
    /// Maxwell-like issue costs.
    pub fn maxwell() -> CpiTable {
        let mut t = CpiTable { costs: [1.0; 14] };
        t.set(InstrClass::IntAdd, 1.0);
        t.set(InstrClass::IntMul, 2.0);
        t.set(InstrClass::IntDiv, 12.0); // emulated in software
        t.set(InstrClass::IntBitwise, 1.0);
        t.set(InstrClass::FloatAdd, 1.0);
        t.set(InstrClass::FloatMul, 1.0);
        t.set(InstrClass::FloatDiv, 8.0);
        t.set(InstrClass::SpecialFn, 4.0); // SFU: 32 lanes vs 128 cores
        t.set(InstrClass::GlobalLoad, 2.0); // issue + address path only
        t.set(InstrClass::GlobalStore, 2.0);
        t.set(InstrClass::LocalLoad, 2.0);
        t.set(InstrClass::LocalStore, 2.0);
        t.set(InstrClass::Branch, 1.0);
        t.set(InstrClass::Other, 0.5);
        t
    }

    /// Cost for one class.
    pub fn get(&self, class: InstrClass) -> f64 {
        self.costs[Self::index(class)]
    }

    /// Override one class's cost.
    pub fn set(&mut self, class: InstrClass, cost: f64) {
        self.costs[Self::index(class)] = cost;
    }

    fn index(class: InstrClass) -> usize {
        InstrClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class listed in ALL")
    }
}

/// Per-instruction-class *energy* weight (relative switched capacitance
/// per executed instruction). Heavier units (divider, SFU, memory
/// datapath) toggle more capacitance per op.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyTable {
    weights: [f64; 14],
}

impl EnergyTable {
    /// Maxwell-like relative energy weights.
    pub fn maxwell() -> EnergyTable {
        let mut t = EnergyTable { weights: [1.0; 14] };
        t.set(InstrClass::IntAdd, 1.0);
        t.set(InstrClass::IntMul, 1.8);
        t.set(InstrClass::IntDiv, 6.0);
        t.set(InstrClass::IntBitwise, 0.9);
        t.set(InstrClass::FloatAdd, 1.2);
        t.set(InstrClass::FloatMul, 1.6);
        t.set(InstrClass::FloatDiv, 6.0);
        t.set(InstrClass::SpecialFn, 4.5);
        t.set(InstrClass::GlobalLoad, 3.0); // core-side LSU energy
        t.set(InstrClass::GlobalStore, 3.0);
        t.set(InstrClass::LocalLoad, 1.5);
        t.set(InstrClass::LocalStore, 1.5);
        t.set(InstrClass::Branch, 0.8);
        t.set(InstrClass::Other, 0.4);
        t
    }

    /// Weight for one class.
    pub fn get(&self, class: InstrClass) -> f64 {
        self.weights[CpiTable::index(class)]
    }

    /// Override one class's weight.
    pub fn set(&mut self, class: InstrClass, w: f64) {
        self.weights[CpiTable::index(class)] = w;
    }
}

/// Full specification of a simulated device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"GTX Titan X"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Scalar cores per SM.
    pub cores_per_sm: u32,
    /// DRAM bytes transferred per memory-clock cycle at 100% efficiency
    /// (bus width × DDR factor).
    pub bytes_per_mem_clock: f64,
    /// Achievable fraction of peak DRAM bandwidth for coalesced access.
    pub mem_efficiency: f64,
    /// Issue-cost table (cycles per instruction per work-item).
    pub cpi: CpiTable,
    /// Energy-weight table (relative capacitance per instruction).
    pub energy: EnergyTable,
    /// Core voltage curve.
    pub voltage: VoltageCurve,
    /// Supported clock configurations.
    pub clocks: ClockTable,
    /// Fixed board power that does not scale with clocks (fan, VRM
    /// losses, PCB) in watts.
    pub board_power_w: f64,
    /// Core-domain leakage power coefficient (W per volt at nominal
    /// temperature): `P_leak = leakage_w_per_v · V`.
    pub leakage_w_per_v: f64,
    /// Core dynamic-power scale (W at V=1, f=1 GHz, full activity).
    pub core_dyn_w: f64,
    /// Memory dynamic-power scale (W at f_mem=1 GHz, full utilization).
    pub mem_dyn_w: f64,
    /// Memory static/refresh power per GHz of memory clock (W).
    pub mem_static_w_per_ghz: f64,
    /// Fixed per-launch overhead in microseconds (driver + dispatch).
    pub launch_overhead_us: f64,
}

impl DeviceSpec {
    /// The GTX Titan X model used throughout the paper's evaluation.
    ///
    /// 24 SMs × 128 cores, 384-bit GDDR5 (48 B / memory clock × DDR ≈
    /// 96 B effective per MT/s-clock — NVML reports the MT/s rate, so a
    /// 3505 MHz "clock" with a 384-bit bus moves 48 bytes per reported
    /// clock tick × 2 for DDR = 336 GB/s peak, matching the card).
    pub fn titan_x() -> DeviceSpec {
        DeviceSpec {
            name: "GTX Titan X".to_string(),
            sm_count: 24,
            cores_per_sm: 128,
            bytes_per_mem_clock: 96.0,
            mem_efficiency: 0.80,
            cpi: CpiTable::maxwell(),
            energy: EnergyTable::maxwell(),
            voltage: VoltageCurve::titan_x(),
            clocks: titan_x_clock_table(),
            board_power_w: 18.0,
            leakage_w_per_v: 38.0,
            core_dyn_w: 70.0,
            mem_dyn_w: 14.0,
            mem_static_w_per_ghz: 5.0,
            launch_overhead_us: 6.0,
        }
    }

    /// The Tesla P100 model of Fig. 4b (single memory domain).
    pub fn tesla_p100() -> DeviceSpec {
        DeviceSpec {
            name: "Tesla P100".to_string(),
            sm_count: 56,
            cores_per_sm: 64,
            // HBM2: 4096-bit bus; NVML reports 715 MHz → 732 GB/s peak.
            bytes_per_mem_clock: 1024.0,
            mem_efficiency: 0.75,
            cpi: CpiTable::maxwell(),
            energy: EnergyTable::maxwell(),
            voltage: VoltageCurve::tesla_p100(),
            clocks: tesla_p100_clock_table(),
            board_power_w: 20.0,
            leakage_w_per_v: 45.0,
            core_dyn_w: 120.0,
            mem_dyn_w: 20.0,
            mem_static_w_per_ghz: 25.0,
            launch_overhead_us: 6.0,
        }
    }

    /// A Tesla K20c model (Kepler, GK110) — the platform of the DVFS
    /// measurement study the paper's related work builds on (Ge et
    /// al.). Coarse clock tables: five core clocks at the full memory
    /// clock plus one power-save state.
    pub fn tesla_k20c() -> DeviceSpec {
        DeviceSpec {
            name: "Tesla K20c".to_string(),
            sm_count: 13,
            cores_per_sm: 192,
            // 320-bit GDDR5 at 2600 MHz reported clock → 208 GB/s peak.
            bytes_per_mem_clock: 80.0,
            mem_efficiency: 0.75,
            cpi: CpiTable::maxwell(),
            energy: EnergyTable::maxwell(),
            voltage: VoltageCurve {
                v_min: 0.9,
                v_max: 1.17,
                f_knee_mhz: 500.0,
                f_max_mhz: 758.0,
            },
            clocks: crate::clocks::tesla_k20c_clock_table(),
            board_power_w: 16.0,
            leakage_w_per_v: 40.0,
            core_dyn_w: 95.0,
            mem_dyn_w: 12.0,
            mem_static_w_per_ghz: 6.0,
            launch_overhead_us: 8.0,
        }
    }

    /// Total scalar cores.
    pub fn total_cores(&self) -> u32 {
        self.sm_count * self.cores_per_sm
    }

    /// Peak DRAM bandwidth in bytes/s at `f_mem` MHz.
    pub fn peak_bandwidth(&self, mem_mhz: u32) -> f64 {
        self.bytes_per_mem_clock * mem_mhz as f64 * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_x_shape() {
        let d = DeviceSpec::titan_x();
        assert_eq!(d.total_cores(), 3072);
        // 336 GB/s class card at the default memory clock.
        let bw = d.peak_bandwidth(3505) / 1e9;
        assert!((330.0..345.0).contains(&bw), "peak bw {bw} GB/s");
    }

    #[test]
    fn p100_bandwidth() {
        let d = DeviceSpec::tesla_p100();
        let bw = d.peak_bandwidth(715) / 1e9;
        assert!((700.0..760.0).contains(&bw), "peak bw {bw} GB/s");
    }

    #[test]
    fn cpi_overrides() {
        let mut t = CpiTable::maxwell();
        assert_eq!(t.get(InstrClass::FloatAdd), 1.0);
        t.set(InstrClass::FloatAdd, 2.5);
        assert_eq!(t.get(InstrClass::FloatAdd), 2.5);
    }

    #[test]
    fn divider_and_sfu_are_expensive() {
        let t = CpiTable::maxwell();
        assert!(t.get(InstrClass::IntDiv) > 4.0 * t.get(InstrClass::IntAdd));
        assert!(t.get(InstrClass::SpecialFn) > t.get(InstrClass::FloatMul));
        let e = EnergyTable::maxwell();
        assert!(e.get(InstrClass::SpecialFn) > e.get(InstrClass::IntAdd));
    }
}
