//! Execution-time model.
//!
//! A roofline-style throughput model with imperfect overlap: the kernel
//! keeps the compute datapath busy for `T_compute` (scaling with the
//! core clock) and the DRAM system busy for `T_memory` (scaling with
//! the memory clock); the two overlap except for a fixed serial
//! fraction. This produces exactly the two regimes the paper analyzes
//! (§1.1, §4.2): compute-dominated kernels whose speedup grows linearly
//! with the core clock, and memory-dominated kernels that are flat in
//! the core clock but sensitive to the memory clock — with a smooth
//! saturation between the regimes as one resource overtakes the other.

use crate::device::DeviceSpec;
use gpufreq_kernel::{FreqConfig, KernelProfile};
use serde::{Deserialize, Serialize};

/// Fraction of the shorter phase that cannot be overlapped with the
/// longer one (dependency stalls, ramp-up/down at kernel boundaries).
pub const SERIAL_OVERLAP_FRACTION: f64 = 0.2;

/// Frequency-independent summary of one kernel launch's resource demand.
///
/// Computing it once and reusing it across a 177-configuration sweep
/// keeps sweeps cheap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelDemand {
    /// Issue cycles consumed by one work-item on its SM.
    pub compute_cycles_per_item: f64,
    /// Relative switched-capacitance units per work-item (see
    /// [`EnergyTable`](crate::device::EnergyTable)).
    pub energy_units_per_item: f64,
    /// Total bytes moved over DRAM by the whole launch.
    pub total_global_bytes: f64,
    /// Total work-items.
    pub global_size: f64,
}

impl KernelDemand {
    /// Evaluate a profile against a device's cost tables.
    pub fn from_profile(spec: &DeviceSpec, profile: &KernelProfile) -> KernelDemand {
        let mut cycles = 0.0;
        let mut energy = 0.0;
        for (class, n) in profile.counts.iter() {
            cycles += n * spec.cpi.get(class);
            energy += n * spec.energy.get(class);
        }
        KernelDemand {
            compute_cycles_per_item: cycles,
            energy_units_per_item: energy,
            total_global_bytes: profile.total_global_bytes(),
            global_size: profile.launch.global_size as f64,
        }
    }

    /// Mean energy units per issue cycle — the datapath "activity
    /// factor" used by the power model.
    pub fn activity(&self) -> f64 {
        if self.compute_cycles_per_item == 0.0 {
            0.0
        } else {
            self.energy_units_per_item / self.compute_cycles_per_item
        }
    }
}

/// Time breakdown of one kernel execution at one frequency setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingBreakdown {
    /// Seconds the compute datapath is busy.
    pub compute_s: f64,
    /// Seconds the DRAM system is busy.
    pub memory_s: f64,
    /// End-to-end kernel time in seconds (overlap model + launch
    /// overhead).
    pub total_s: f64,
}

impl TimingBreakdown {
    /// Fraction of the execution during which the compute datapath is
    /// busy (`∈ [0, 1]`).
    pub fn core_utilization(&self) -> f64 {
        if self.total_s == 0.0 {
            0.0
        } else {
            (self.compute_s / self.total_s).min(1.0)
        }
    }

    /// Fraction of the execution during which DRAM is busy (`∈ [0, 1]`).
    pub fn mem_utilization(&self) -> f64 {
        if self.total_s == 0.0 {
            0.0
        } else {
            (self.memory_s / self.total_s).min(1.0)
        }
    }

    /// Whether the execution is memory-bound at this setting.
    pub fn is_memory_bound(&self) -> bool {
        self.memory_s > self.compute_s
    }
}

/// Compute the execution time of `demand` at `config` on `spec`.
///
/// `config` must already be resolved (clamped) against the clock table;
/// the model itself accepts any positive frequencies.
pub fn execution_time(
    spec: &DeviceSpec,
    demand: &KernelDemand,
    config: FreqConfig,
) -> TimingBreakdown {
    let core_hz = config.core_mhz as f64 * 1e6;
    let total_compute_cycles =
        demand.compute_cycles_per_item * demand.global_size / spec.total_cores() as f64;
    let compute_s = total_compute_cycles / core_hz;
    let bw = spec.peak_bandwidth(config.mem_mhz) * spec.mem_efficiency;
    let memory_s = demand.total_global_bytes / bw;
    let (long, short) = if compute_s >= memory_s {
        (compute_s, memory_s)
    } else {
        (memory_s, compute_s)
    };
    let total_s = long + SERIAL_OVERLAP_FRACTION * short + spec.launch_overhead_us * 1e-6;
    TimingBreakdown {
        compute_s,
        memory_s,
        total_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_kernel::parser::parse;
    use gpufreq_kernel::{AnalysisConfig, LaunchConfig};

    fn profile(src: &str) -> KernelProfile {
        let prog = parse(src).unwrap();
        KernelProfile::from_kernel(
            prog.first_kernel().unwrap(),
            &AnalysisConfig::default(),
            LaunchConfig::new(1 << 22, 256),
        )
        .unwrap()
    }

    fn compute_bound() -> KernelProfile {
        profile(
            "__kernel void k(__global float* x) {
                uint i = get_global_id(0);
                float v = x[i];
                for (int it = 0; it < 256; it += 1) { v = v * 1.000001f + 0.5f; }
                x[i] = v;
            }",
        )
    }

    fn memory_bound() -> KernelProfile {
        profile(
            "__kernel void k(__global float* x, __global float* y) {
                uint i = get_global_id(0);
                y[i] = x[i] * 2.0f;
            }",
        )
    }

    #[test]
    fn compute_bound_scales_with_core_clock() {
        let spec = DeviceSpec::titan_x();
        let d = KernelDemand::from_profile(&spec, &compute_bound());
        let slow = execution_time(&spec, &d, FreqConfig::new(3505, 500));
        let fast = execution_time(&spec, &d, FreqConfig::new(3505, 1000));
        assert!(!slow.is_memory_bound());
        let speedup = slow.total_s / fast.total_s;
        assert!((1.85..=2.0).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn memory_bound_flat_in_core_clock() {
        let spec = DeviceSpec::titan_x();
        let d = KernelDemand::from_profile(&spec, &memory_bound());
        let slow = execution_time(&spec, &d, FreqConfig::new(3505, 600));
        let fast = execution_time(&spec, &d, FreqConfig::new(3505, 1202));
        assert!(slow.is_memory_bound());
        let speedup = slow.total_s / fast.total_s;
        assert!(speedup < 1.15, "speedup {speedup} should be near 1");
    }

    #[test]
    fn memory_bound_scales_with_mem_clock() {
        let spec = DeviceSpec::titan_x();
        let d = KernelDemand::from_profile(&spec, &memory_bound());
        let lo = execution_time(&spec, &d, FreqConfig::new(810, 810));
        let hi = execution_time(&spec, &d, FreqConfig::new(3505, 810));
        let speedup = lo.total_s / hi.total_s;
        assert!(speedup > 2.0, "memory clock 810->3505 speedup {speedup}");
    }

    #[test]
    fn time_is_monotone_in_core_clock() {
        let spec = DeviceSpec::titan_x();
        for p in [compute_bound(), memory_bound()] {
            let d = KernelDemand::from_profile(&spec, &p);
            let mut prev = f64::INFINITY;
            for core in (135..=1202).step_by(97) {
                let t = execution_time(&spec, &d, FreqConfig::new(3505, core as u32)).total_s;
                assert!(t <= prev + 1e-15, "time must not increase with core clock");
                prev = t;
            }
        }
    }

    #[test]
    fn utilizations_are_fractions() {
        let spec = DeviceSpec::titan_x();
        let d = KernelDemand::from_profile(&spec, &memory_bound());
        let t = execution_time(&spec, &d, FreqConfig::new(810, 1202));
        assert!((0.0..=1.0).contains(&t.core_utilization()));
        assert!((0.0..=1.0).contains(&t.mem_utilization()));
        assert!(t.mem_utilization() > t.core_utilization());
    }

    #[test]
    fn demand_activity_reflects_mix() {
        let spec = DeviceSpec::titan_x();
        let sf_heavy = profile(
            "__kernel void k(__global float* x) {
                uint i = get_global_id(0);
                float v = x[i];
                for (int it = 0; it < 64; it += 1) { v = sin(v); }
                x[i] = v;
            }",
        );
        let add_heavy = compute_bound();
        let a_sf = KernelDemand::from_profile(&spec, &sf_heavy).activity();
        let a_add = KernelDemand::from_profile(&spec, &add_heavy).activity();
        assert!(a_sf > 0.0 && a_add > 0.0);
        // SFU ops carry more energy per cycle than fused add/mul chains.
        assert!(a_sf != a_add);
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let spec = DeviceSpec::titan_x();
        let mut p = memory_bound();
        p.launch = LaunchConfig::new(32, 32);
        let d = KernelDemand::from_profile(&spec, &p);
        let t = execution_time(&spec, &d, FreqConfig::new(3505, 1001));
        assert!(t.total_s >= spec.launch_overhead_us * 1e-6);
    }
}
