//! The NVML power sensor and the measurement protocol of §4.1.
//!
//! NVML reports board power at 62.5 Hz. A kernel that finishes in a few
//! milliseconds contributes at most one sample, so — exactly as the
//! paper describes — the measurement protocol repeats the kernel until
//! enough samples have been collected for a statistically consistent
//! average, and derives per-kernel energy as average power × time.
//! The sensor also accounts the *simulated wall-clock cost* of a
//! measurement (clock-switch settling plus all repetitions), which is
//! what makes exhaustive sweeps expensive (§3.3: 40 settings ≈ 20 min,
//! 174 settings ≈ 70 min per kernel).

use crate::noise::NoiseSampler;
use gpufreq_kernel::FreqConfig;
use serde::{Deserialize, Serialize};

/// NVML power-sampling frequency in Hz (§4.1).
pub const NVML_SAMPLE_HZ: f64 = 62.5;

/// Measurement protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasurementProtocol {
    /// Sensor sampling rate (Hz).
    pub sample_hz: f64,
    /// Minimum number of power samples for a consistent average.
    pub min_samples: u32,
    /// Minimum accumulated busy time (s) regardless of sample count.
    pub min_busy_s: f64,
    /// Hard cap on kernel repetitions.
    pub max_runs: u32,
    /// Time (s) spent settling after a clock switch, before measuring.
    pub settle_s: f64,
}

impl Default for MeasurementProtocol {
    fn default() -> Self {
        // Calibrated so that one setting costs ~30 s of wall clock —
        // the paper's accounting (40 settings ≈ 20 min, §3.3).
        MeasurementProtocol {
            sample_hz: NVML_SAMPLE_HZ,
            min_samples: 64,
            min_busy_s: 8.0,
            max_runs: 1_000_000,
            settle_s: 22.0,
        }
    }
}

/// One measured kernel execution at one frequency setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// The configuration that was actually applied (after clamping).
    pub config: FreqConfig,
    /// Single-execution time in milliseconds.
    pub time_ms: f64,
    /// Average board power over the measurement in watts.
    pub avg_power_w: f64,
    /// Per-execution energy in joules.
    pub energy_j: f64,
    /// Number of 62.5 Hz power samples collected.
    pub samples: u32,
    /// Number of kernel repetitions executed.
    pub runs: u32,
    /// Simulated wall-clock cost of this measurement in seconds
    /// (settling + repetitions).
    pub sim_wall_s: f64,
}

/// Collect a measurement for a kernel whose true single-run time is
/// `true_time_s` and true average power is `true_power_w`, repeating
/// runs per the protocol. `noise`, when provided, perturbs each run's
/// time and each power sample.
pub fn measure(
    protocol: &MeasurementProtocol,
    config: FreqConfig,
    true_time_s: f64,
    true_power_w: f64,
    mut noise: Option<&mut NoiseSampler>,
) -> Measurement {
    assert!(true_time_s > 0.0, "kernel time must be positive");
    // How many repetitions are needed so that busy time yields the
    // required sample count and minimum duration.
    let need_s = (protocol.min_samples as f64 / protocol.sample_hz).max(protocol.min_busy_s);
    let runs = ((need_s / true_time_s).ceil() as u32).clamp(1, protocol.max_runs);

    let mut busy_s = 0.0;
    for _ in 0..runs {
        let t = match noise.as_deref_mut() {
            Some(n) => n.perturb_time(true_time_s),
            None => true_time_s,
        };
        busy_s += t;
    }
    let samples = ((busy_s * protocol.sample_hz).floor() as u32).max(1);
    let mut power_acc = 0.0;
    for _ in 0..samples {
        let p = match noise.as_deref_mut() {
            Some(n) => n.perturb_power(true_power_w),
            None => true_power_w,
        };
        power_acc += p;
    }
    let avg_power_w = power_acc / samples as f64;
    let time_ms = busy_s / runs as f64 * 1e3;
    Measurement {
        config,
        time_ms,
        avg_power_w,
        energy_j: avg_power_w * (time_ms * 1e-3),
        samples,
        runs,
        sim_wall_s: protocol.settle_s + busy_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;

    fn cfg() -> FreqConfig {
        FreqConfig::new(3505, 1001)
    }

    #[test]
    fn short_kernels_are_repeated() {
        let p = MeasurementProtocol::default();
        let m = measure(&p, cfg(), 2e-3, 180.0, None);
        assert!(m.runs >= 500, "2 ms kernel needs many runs, got {}", m.runs);
        assert!(m.samples >= p.min_samples);
    }

    #[test]
    fn long_kernels_run_once() {
        let p = MeasurementProtocol::default();
        let m = measure(&p, cfg(), 10.0, 180.0, None);
        assert_eq!(m.runs, 1);
        assert!(m.samples as f64 >= 10.0 * p.sample_hz - 1.0);
    }

    #[test]
    fn noiseless_measurement_is_exact() {
        let p = MeasurementProtocol::default();
        let m = measure(&p, cfg(), 5e-3, 200.0, None);
        assert!((m.time_ms - 5.0).abs() < 1e-9);
        assert!((m.avg_power_w - 200.0).abs() < 1e-9);
        assert!((m.energy_j - 200.0 * 5e-3).abs() < 1e-9);
    }

    #[test]
    fn wall_clock_includes_settling() {
        let p = MeasurementProtocol::default();
        let m = measure(&p, cfg(), 0.5, 150.0, None);
        assert!(m.sim_wall_s >= p.settle_s + 1.0 - 1e-9);
    }

    #[test]
    fn noisy_measurement_converges_to_truth() {
        let p = MeasurementProtocol::default();
        let model = NoiseModel::new(0.02, 0.05, 11);
        let mut s = model.sampler();
        let m = measure(&p, cfg(), 1e-3, 180.0, Some(&mut s));
        assert!((m.avg_power_w - 180.0).abs() < 5.0, "avg {}", m.avg_power_w);
        assert!((m.time_ms - 1.0).abs() < 0.05, "time {}", m.time_ms);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = MeasurementProtocol::default();
        let model = NoiseModel::new(0.02, 0.05, 5);
        let a = measure(&p, cfg(), 1e-3, 180.0, Some(&mut model.sampler()));
        let b = measure(&p, cfg(), 1e-3, 180.0, Some(&mut model.sampler()));
        assert_eq!(a, b);
    }
}
