//! Component-decomposed board power model.
//!
//! Follows the decomposition used by runtime power-modeling work (Isci
//! & Martonosi-style, per-component, as in Guerreiro et al., the source
//! of the paper's feature design): board power is the sum of
//!
//! * a fixed board term (fan, VRM losses),
//! * core-domain leakage, scaling with the DVFS voltage,
//! * core-domain dynamic power `∝ activity · utilization · V² · f_core`,
//! * memory-domain dynamic power `∝ utilization · f_mem`,
//! * memory static/refresh power `∝ f_mem`.
//!
//! Together with the [`VoltageCurve`](crate::voltage::VoltageCurve) this
//! yields the paper's observed energy shapes: a parabola with an
//! interior minimum for compute-bound kernels, and energy growing with
//! the core clock for memory-bound ones.

use crate::device::DeviceSpec;
use crate::timing::{KernelDemand, TimingBreakdown};
use gpufreq_kernel::FreqConfig;
use serde::{Deserialize, Serialize};

/// Power breakdown of one kernel execution at one frequency setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Fixed board power (W).
    pub board_w: f64,
    /// Core-domain leakage (W).
    pub leakage_w: f64,
    /// Core-domain dynamic power (W).
    pub core_dynamic_w: f64,
    /// Memory-domain dynamic power (W).
    pub mem_dynamic_w: f64,
    /// Memory static/refresh power (W).
    pub mem_static_w: f64,
}

impl PowerBreakdown {
    /// Total board power draw in watts.
    pub fn total_w(&self) -> f64 {
        self.board_w + self.leakage_w + self.core_dynamic_w + self.mem_dynamic_w + self.mem_static_w
    }
}

/// Average board power while `demand` executes at `config` with the
/// phase behaviour described by `timing`.
pub fn average_power(
    spec: &DeviceSpec,
    demand: &KernelDemand,
    config: FreqConfig,
    timing: &TimingBreakdown,
) -> PowerBreakdown {
    let v = spec.voltage.voltage(config.core_mhz as f64);
    let f_core_ghz = config.core_mhz as f64 / 1000.0;
    let f_mem_ghz = config.mem_mhz as f64 / 1000.0;
    let core_dynamic_w =
        spec.core_dyn_w * demand.activity() * timing.core_utilization() * v * v * f_core_ghz;
    let mem_dynamic_w = spec.mem_dyn_w * timing.mem_utilization() * f_mem_ghz;
    PowerBreakdown {
        board_w: spec.board_power_w,
        leakage_w: spec.leakage_w_per_v * v,
        core_dynamic_w,
        mem_dynamic_w,
        mem_static_w: spec.mem_static_w_per_ghz * f_mem_ghz,
    }
}

/// Energy in joules for one execution: average power × time.
pub fn energy_j(power: &PowerBreakdown, timing: &TimingBreakdown) -> f64 {
    power.total_w() * timing.total_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::execution_time;
    use gpufreq_kernel::parser::parse;
    use gpufreq_kernel::{AnalysisConfig, KernelProfile, LaunchConfig};

    fn profile(src: &str) -> KernelProfile {
        let prog = parse(src).unwrap();
        KernelProfile::from_kernel(
            prog.first_kernel().unwrap(),
            &AnalysisConfig::default(),
            LaunchConfig::new(1 << 22, 256),
        )
        .unwrap()
    }

    fn compute_bound() -> KernelProfile {
        profile(
            "__kernel void k(__global float* x) {
                uint i = get_global_id(0);
                float v = x[i];
                for (int it = 0; it < 256; it += 1) { v = v * 1.000001f + 0.5f; }
                x[i] = v;
            }",
        )
    }

    fn memory_bound() -> KernelProfile {
        profile(
            "__kernel void k(__global float* x, __global float* y) {
                uint i = get_global_id(0);
                y[i] = x[i] * 2.0f;
            }",
        )
    }

    fn energy_at(spec: &DeviceSpec, p: &KernelProfile, cfg: FreqConfig) -> f64 {
        let d = KernelDemand::from_profile(spec, p);
        let t = execution_time(spec, &d, cfg);
        let pw = average_power(spec, &d, cfg, &t);
        energy_j(&pw, &t)
    }

    #[test]
    fn power_is_positive_and_plausible() {
        let spec = DeviceSpec::titan_x();
        let p = compute_bound();
        let d = KernelDemand::from_profile(&spec, &p);
        let cfg = FreqConfig::new(3505, 1001);
        let t = execution_time(&spec, &d, cfg);
        let pw = average_power(&spec, &d, cfg, &t);
        let w = pw.total_w();
        assert!((60.0..400.0).contains(&w), "default power {w} W");
    }

    #[test]
    fn compute_bound_energy_is_parabolic_in_core_clock() {
        // §1.1: normalized energy behaves like a parabola with an
        // interior minimum for compute-dominated kernels.
        let spec = DeviceSpec::titan_x();
        let p = compute_bound();
        let cores: Vec<u32> = (0..50).map(|i| 135 + i * (1202 - 135) / 49).collect();
        let energies: Vec<f64> = cores
            .iter()
            .map(|&c| energy_at(&spec, &p, FreqConfig::new(3505, c)))
            .collect();
        let (min_idx, _) = energies
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let f_min = cores[min_idx];
        assert!(
            (700..=1100).contains(&f_min),
            "energy minimum at {f_min} MHz, expected interior (paper: 885-987)"
        );
        // Interior minimum: both extremes cost more.
        assert!(energies[0] > energies[min_idx]);
        assert!(energies[cores.len() - 1] > energies[min_idx]);
    }

    #[test]
    fn memory_bound_energy_grows_at_high_core_clock() {
        // §1.1 (MT): for memory-bound kernels, pushing the core clock
        // only adds power without reducing time.
        let spec = DeviceSpec::titan_x();
        let p = memory_bound();
        let low = energy_at(&spec, &p, FreqConfig::new(3505, 700));
        let high = energy_at(&spec, &p, FreqConfig::new(3505, 1202));
        assert!(high > low, "high-core energy {high} should exceed {low}");
    }

    #[test]
    fn leakage_scales_with_voltage() {
        let spec = DeviceSpec::titan_x();
        let p = compute_bound();
        let d = KernelDemand::from_profile(&spec, &p);
        let lo_cfg = FreqConfig::new(3505, 405);
        let hi_cfg = FreqConfig::new(3505, 1202);
        let lo = average_power(&spec, &d, lo_cfg, &execution_time(&spec, &d, lo_cfg));
        let hi = average_power(&spec, &d, hi_cfg, &execution_time(&spec, &d, hi_cfg));
        assert!(hi.leakage_w > lo.leakage_w);
    }

    #[test]
    fn memory_clock_contributes_static_power() {
        let spec = DeviceSpec::titan_x();
        let p = compute_bound();
        let d = KernelDemand::from_profile(&spec, &p);
        let lo_cfg = FreqConfig::new(810, 810);
        let hi_cfg = FreqConfig::new(3505, 810);
        let lo = average_power(&spec, &d, lo_cfg, &execution_time(&spec, &d, lo_cfg));
        let hi = average_power(&spec, &d, hi_cfg, &execution_time(&spec, &d, hi_cfg));
        assert!(hi.mem_static_w > lo.mem_static_w);
        assert!(hi.total_w() > lo.total_w());
    }

    #[test]
    fn breakdown_sums_to_total() {
        let spec = DeviceSpec::titan_x();
        let p = memory_bound();
        let d = KernelDemand::from_profile(&spec, &p);
        let cfg = FreqConfig::new(3505, 1001);
        let t = execution_time(&spec, &d, cfg);
        let b = average_power(&spec, &d, cfg, &t);
        let sum = b.board_w + b.leakage_w + b.core_dynamic_w + b.mem_dynamic_w + b.mem_static_w;
        assert!((sum - b.total_w()).abs() < 1e-12);
    }
}
