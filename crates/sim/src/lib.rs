//! `gpufreq-sim` — a deterministic, cycle-approximate GPU DVFS
//! simulator with an NVML-like management facade.
//!
//! This crate is the hardware substrate of the `gpufreq` reproduction
//! of *Predictable GPUs Frequency Scaling for Energy and Performance*
//! (Fan, Cosenza, Juurlink — ICPP 2019). The paper measures a physical
//! GTX Titan X through NVML; this environment has no GPU, so the
//! simulator reproduces the *mechanisms* the measurements expose:
//!
//! * [`clocks`] — the exact clock-domain structure of the Titan X
//!   (four memory domains, 219 advertised configurations, the 1202 MHz
//!   clamp quirk, 6/71/50/50 actual core clocks per domain) and of a
//!   Tesla P100;
//! * [`voltage`] — a DVFS voltage curve with a near-threshold floor;
//! * [`timing`] — a roofline-style execution-time model that yields
//!   compute-bound (linear-in-`f_core`) and memory-bound
//!   (flat-in-`f_core`) regimes;
//! * [`power`] — a component-decomposed power model whose `V²·f` core
//!   term produces the paper's parabola-with-minimum energy curves;
//! * [`sensor`] — the 62.5 Hz NVML power sampler and the multi-run
//!   measurement protocol of §4.1, including simulated wall-clock
//!   accounting (why exhaustive sweeps take 70 minutes per kernel);
//! * [`nvml`] — a facade with NVML-shaped entry points;
//! * [`registry`] — the typed [`Device`] registry mapping stable ids
//!   (`titan-x`, `tesla-p100`, `tesla-k20c`) to specs and simulators;
//! * [`runner`] — the [`GpuSimulator`]: run, sweep (scoped-thread-parallel)
//!   and characterize kernels against the default-clock baseline;
//! * [`noise`] — optional seeded measurement noise.
//!
//! # Example
//!
//! ```
//! use gpufreq_sim::GpuSimulator;
//! use gpufreq_kernel::{parse, AnalysisConfig, KernelProfile, LaunchConfig};
//!
//! let program = parse(
//!     "__kernel void scale(__global float* x) {
//!          uint i = get_global_id(0);
//!          x[i] = x[i] * 2.0f;
//!      }",
//! ).unwrap();
//! let profile = KernelProfile::from_kernel(
//!     program.first_kernel().unwrap(),
//!     &AnalysisConfig::default(),
//!     LaunchConfig::new(1 << 20, 256),
//! ).unwrap();
//!
//! let sim = GpuSimulator::titan_x();
//! let characterization = sim.characterize(&profile);
//! assert_eq!(characterization.points.len(), 177);
//! ```

#![deny(missing_docs)]

pub mod clocks;
pub mod device;
pub mod noise;
pub mod nvml;
pub mod power;
pub mod registry;
pub mod runner;
pub mod sensor;
pub mod timing;
pub mod voltage;

pub use clocks::{
    tesla_k20c_clock_table, tesla_p100_clock_table, titan_x_clock_table, ClockTable, MemDomain,
    MemoryDomainClocks, TITAN_X_CLAMP_MHZ, TITAN_X_DEFAULT,
};
pub use device::{CpiTable, DeviceSpec, EnergyTable};
pub use noise::{NoiseModel, NoiseSampler};
pub use nvml::{NvmlDevice, NvmlError};
pub use power::{average_power, energy_j, PowerBreakdown};
pub use registry::{Device, UnknownDevice};
pub use runner::{Characterization, GpuSimulator, NormalizedMeasurement, UnsupportedConfig};
pub use sensor::{measure, Measurement, MeasurementProtocol, NVML_SAMPLE_HZ};
pub use timing::{execution_time, KernelDemand, TimingBreakdown};
pub use voltage::VoltageCurve;
