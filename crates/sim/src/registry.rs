//! The device registry: every GPU the simulator can model, as a typed
//! enum instead of a stringly-typed name.
//!
//! [`Device`] is the single source of truth for the mapping between
//! stable textual ids (`titan-x`, `tesla-p100`, `tesla-k20c` — the
//! values the CLI's `--device` flag accepts and model artifacts
//! record) and the [`DeviceSpec`]/[`GpuSimulator`] constructors.
//! Parsing an unknown id is a typed error ([`UnknownDevice`]) that
//! lists the valid ids — never a silent fallback.

use crate::device::DeviceSpec;
use crate::runner::GpuSimulator;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::str::FromStr;

/// A GPU known to the simulator.
///
/// The paper evaluates on the GTX Titan X (four memory domains, the
/// "interesting" case) and the Tesla P100 (single memory domain,
/// §4.1's portability study); the Tesla K20c models the Kepler
/// platform of the related DVFS measurement work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// GTX Titan X (Maxwell, GM200) — the paper's primary platform.
    TitanX,
    /// Tesla P100 (Pascal, GP100) — single 715 MHz memory domain.
    TeslaP100,
    /// Tesla K20c (Kepler, GK110) — coarse clock tables.
    TeslaK20c,
}

impl Device {
    /// Every registered device, in CLI listing order.
    pub fn all() -> [Device; 3] {
        [Device::TitanX, Device::TeslaP100, Device::TeslaK20c]
    }

    /// The stable textual id (`titan-x`, `tesla-p100`, `tesla-k20c`)
    /// used by the CLI and recorded in model artifacts.
    pub const fn id(self) -> &'static str {
        match self {
            Device::TitanX => "titan-x",
            Device::TeslaP100 => "tesla-p100",
            Device::TeslaK20c => "tesla-k20c",
        }
    }

    /// The full device specification.
    pub fn spec(self) -> DeviceSpec {
        match self {
            Device::TitanX => DeviceSpec::titan_x(),
            Device::TeslaP100 => DeviceSpec::tesla_p100(),
            Device::TeslaK20c => DeviceSpec::tesla_k20c(),
        }
    }

    /// A simulator for this device.
    pub fn simulator(self) -> GpuSimulator {
        GpuSimulator::new(self.spec())
    }

    /// The comma-separated list of valid ids, for error messages.
    pub fn valid_ids() -> String {
        Device::all()
            .iter()
            .map(|d| d.id())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Error returned when a device id does not name a registered device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownDevice {
    /// The id that failed to parse.
    pub given: String,
}

impl fmt::Display for UnknownDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown device `{}` (valid devices: {})",
            self.given,
            Device::valid_ids()
        )
    }
}

impl std::error::Error for UnknownDevice {}

impl FromStr for Device {
    type Err = UnknownDevice;

    /// Parse a stable device id.
    ///
    /// ```
    /// use gpufreq_sim::Device;
    ///
    /// let device: Device = "tesla-p100".parse()?;
    /// assert_eq!(device, Device::TeslaP100);
    /// // Unknown ids are typed errors listing the valid ids — never a
    /// // silent fallback.
    /// let err = "gtx-9000".parse::<Device>().unwrap_err();
    /// assert!(err.to_string().contains("titan-x, tesla-p100, tesla-k20c"));
    /// # Ok::<(), gpufreq_sim::UnknownDevice>(())
    /// ```
    fn from_str(s: &str) -> Result<Device, UnknownDevice> {
        Device::all()
            .into_iter()
            .find(|d| d.id() == s)
            .ok_or_else(|| UnknownDevice { given: s.into() })
    }
}

// Hand-written (de)serialization so artifacts record the stable id
// (`"titan-x"`) rather than the Rust variant name.
impl Serialize for Device {
    fn serialize(&self) -> Value {
        Value::String(self.id().to_string())
    }
}

impl Deserialize for Device {
    fn deserialize(v: &Value) -> Result<Device, serde::Error> {
        match v {
            Value::String(s) => s
                .parse()
                .map_err(|e: UnknownDevice| serde::Error::custom(format!("device: {e}"))),
            other => Err(serde::Error::custom(format!(
                "expected device id string, found {}",
                serde::kind_name(other)
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_from_str() {
        for device in Device::all() {
            assert_eq!(device.id().parse::<Device>().unwrap(), device);
            assert_eq!(device.to_string(), device.id());
        }
    }

    #[test]
    fn unknown_id_lists_valid_devices() {
        let err = "teslap100".parse::<Device>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown device `teslap100`"), "{msg}");
        assert!(msg.contains("titan-x, tesla-p100, tesla-k20c"), "{msg}");
    }

    #[test]
    fn specs_match_legacy_constructors() {
        assert_eq!(Device::TitanX.spec(), DeviceSpec::titan_x());
        assert_eq!(Device::TeslaP100.spec(), DeviceSpec::tesla_p100());
        assert_eq!(Device::TeslaK20c.spec(), DeviceSpec::tesla_k20c());
    }

    #[test]
    fn serde_uses_stable_ids() {
        let json = serde_json::to_string(&Device::TeslaP100).unwrap();
        assert_eq!(json, "\"tesla-p100\"");
        let back: Device = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Device::TeslaP100);
        assert!(serde_json::from_str::<Device>("\"gtx-9000\"").is_err());
    }
}
