//! Cross-module integration tests of the simulated device: the
//! emergent behaviours the paper's measurements rely on, validated
//! end-to-end through profiles built from real kernel source.

use gpufreq_kernel::{parse, AnalysisConfig, FreqConfig, KernelProfile, LaunchConfig};
use gpufreq_sim::{GpuSimulator, MeasurementProtocol, NoiseModel};
use proptest::prelude::*;

fn profile_of(src: &str, global: u64) -> KernelProfile {
    let program = parse(src).unwrap();
    KernelProfile::from_kernel(
        program.first_kernel().unwrap(),
        &AnalysisConfig::default(),
        LaunchConfig::new(global, 256),
    )
    .unwrap()
}

fn compute_kernel() -> KernelProfile {
    profile_of(
        "__kernel void c(__global float* x) {
            uint i = get_global_id(0);
            float v = x[i];
            for (int k = 0; k < 512; k += 1) { v = v * 1.0001f + 0.25f; }
            x[i] = v;
        }",
        1 << 20,
    )
}

fn stream_kernel() -> KernelProfile {
    profile_of(
        "__kernel void s(__global float* x, __global float* y) {
            uint i = get_global_id(0);
            y[i] = x[i] + 1.0f;
        }",
        1 << 22,
    )
}

#[test]
fn energy_performance_pareto_structure_emerges() {
    // The motivating observation of §1.1: sweeping configurations
    // produces a genuine trade-off — the fastest configuration is not
    // the most energy-efficient one.
    let sim = GpuSimulator::titan_x();
    let c = sim.characterize(&compute_kernel());
    let fastest = c
        .points
        .iter()
        .max_by(|a, b| a.speedup.partial_cmp(&b.speedup).unwrap())
        .unwrap();
    let cheapest = c
        .points
        .iter()
        .min_by(|a, b| a.norm_energy.partial_cmp(&b.norm_energy).unwrap())
        .unwrap();
    assert_ne!(fastest.config(), cheapest.config());
    assert!(fastest.speedup > 1.0, "over-clocking beats the default");
    assert!(
        cheapest.norm_energy < 1.0,
        "the default is not energy-optimal"
    );
}

#[test]
fn default_config_can_be_dominated() {
    // Fig. 1c: the default configuration "may be not Pareto-optimal" —
    // some measured point dominates (1.0, 1.0) for the compute kernel.
    let sim = GpuSimulator::titan_x();
    let c = sim.characterize(&compute_kernel());
    let dominating = c
        .points
        .iter()
        .filter(|p| {
            (p.speedup >= 1.0 && p.norm_energy < 1.0) || (p.speedup > 1.0 && p.norm_energy <= 1.0)
        })
        .count();
    assert!(dominating > 0, "no configuration dominates the default");
}

#[test]
fn memory_clock_changes_stream_kernel_energy_floor() {
    // For a streaming kernel, dropping the memory clock stretches time
    // so much that energy per task rises despite lower power.
    let sim = GpuSimulator::titan_x();
    let p = stream_kernel();
    let hi = sim.run(&p, FreqConfig::new(3505, 1001)).unwrap();
    let lo = sim.run(&p, FreqConfig::new(405, 405)).unwrap();
    assert!(
        lo.time_ms > 4.0 * hi.time_ms,
        "bandwidth starvation must show in time"
    );
    assert!(
        lo.energy_j > hi.energy_j,
        "starved run must cost more energy per task"
    );
    assert!(lo.avg_power_w < hi.avg_power_w, "but draw less power");
}

#[test]
fn launch_size_scales_time_not_normalized_shape() {
    let sim = GpuSimulator::titan_x();
    let small = profile_of(
        "__kernel void k(__global float* x) {
            uint i = get_global_id(0);
            x[i] = x[i] * 2.0f + 1.0f;
        }",
        1 << 18,
    );
    let mut large = small.clone();
    large.launch = LaunchConfig::new(1 << 22, 256);
    let cfg = FreqConfig::new(3505, 1001);
    let ms = sim.run(&small, cfg).unwrap();
    let ml = sim.run(&large, cfg).unwrap();
    assert!(
        ml.time_ms > 8.0 * ms.time_ms,
        "16x work must show in time (launch overhead dilutes the small run)"
    );
    // Normalized objective shape is launch-invariant.
    let cs = sim.characterize_at(&small, &[FreqConfig::new(3505, 592)]);
    let cl = sim.characterize_at(&large, &[FreqConfig::new(3505, 592)]);
    assert!((cs.points[0].speedup - cl.points[0].speedup).abs() < 0.05);
    assert!((cs.points[0].norm_energy - cl.points[0].norm_energy).abs() < 0.05);
}

#[test]
fn protocol_repetitions_shrink_with_longer_kernels() {
    let sim = GpuSimulator::titan_x().with_protocol(MeasurementProtocol {
        min_samples: 128,
        ..Default::default()
    });
    let short = sim.run_default(&stream_kernel());
    let long = sim.run_default(&compute_kernel());
    assert!(short.runs > long.runs);
    assert!(short.samples >= 128 && long.samples >= 128);
}

#[test]
fn noise_does_not_bias_the_characterization() {
    let clean = GpuSimulator::titan_x();
    let noisy = GpuSimulator::titan_x().with_noise(NoiseModel::new(0.01, 0.03, 1234));
    let p = compute_kernel();
    let configs = clean.spec().clocks.sample_configs(10);
    let a = clean.characterize_at(&p, &configs);
    let b = noisy.characterize_at(&p, &configs);
    for (x, y) in a.points.iter().zip(&b.points) {
        assert!(
            (x.speedup - y.speedup).abs() < 0.05,
            "noise shifted speedup too far"
        );
        assert!((x.norm_energy - y.norm_energy).abs() < 0.08);
    }
}

#[test]
fn p100_and_titan_x_disagree_on_best_configs() {
    // Different clock domains → different tuning landscapes; the same
    // kernel yields differently-shaped fronts on the two devices.
    let titan = GpuSimulator::titan_x();
    let p100 = GpuSimulator::tesla_p100();
    let p = stream_kernel();
    let ct = titan.characterize(&p);
    let cp = p100.characterize(&p);
    let spread = |c: &gpufreq_sim::Characterization| {
        let (lo, hi) = c
            .points
            .iter()
            .map(|p| p.speedup)
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), v| {
                (l.min(v), h.max(v))
            });
        hi - lo
    };
    // The Titan X exposes memory scaling; the P100 cannot, so its
    // speedup spread for a memory-bound kernel is much narrower.
    assert!(spread(&ct) > 2.0 * spread(&cp));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Energy = power x time holds for every measurement.
    #[test]
    fn energy_identity(seed in 0usize..40) {
        let sim = GpuSimulator::titan_x();
        let configs = sim.spec().clocks.sample_configs(40);
        let cfg = configs[seed % configs.len()];
        let m = sim.run(&compute_kernel(), cfg).unwrap();
        prop_assert!((m.energy_j - m.avg_power_w * m.time_ms * 1e-3).abs() < 1e-9);
    }

    /// Every supported configuration yields a finite, positive
    /// measurement for an arbitrary mix of the two reference kernels.
    #[test]
    fn all_configs_measure_cleanly(idx in 0usize..177, pick in 0u8..2) {
        let sim = GpuSimulator::titan_x();
        let configs = sim.spec().clocks.actual_configs();
        let cfg = configs[idx % configs.len()];
        let p = if pick == 0 { compute_kernel() } else { stream_kernel() };
        let m = sim.run(&p, cfg).unwrap();
        prop_assert!(m.time_ms > 0.0 && m.time_ms.is_finite());
        prop_assert!(m.avg_power_w > 20.0 && m.avg_power_w < 500.0);
    }
}
