//! Integration coverage for the `gpufreq_core::report` formatting
//! helpers: column alignment (including non-ASCII cells), NaN and
//! empty-row rendering, and the divergent escaping rules of CSV
//! (RFC 4180 quoting) vs Markdown (pipe/newline escaping).

use gpufreq_core::{ascii_table, csv_field, markdown_escape, markdown_table, series_csv};

#[test]
fn ascii_table_aligns_non_ascii_cells_by_chars_not_bytes() {
    let t = ascii_table(
        &["metric", "tier"],
        &[
            vec!["§4.4, Fig. 6 — RMSE ≥ 5%".to_string(), "pass".to_string()],
            vec!["plain ascii".to_string(), "FAIL".to_string()],
        ],
    );
    // Every rendered line has the same display width (char count),
    // even though the first row is longer in bytes than in chars.
    let widths: Vec<usize> = t.lines().map(|l| l.chars().count()).collect();
    assert!(
        widths.windows(2).all(|w| w[0] == w[1]),
        "misaligned output:\n{t}"
    );
}

#[test]
fn ascii_table_with_no_rows_renders_header_only() {
    let t = ascii_table(&["a", "bb"], &[]);
    let lines: Vec<&str> = t.lines().collect();
    // Border, header, border — and nothing else.
    assert_eq!(lines.len(), 3);
    assert_eq!(lines[0], lines[2]);
    assert!(lines[1].contains("| a "));
    assert!(lines[1].contains("| bb "));
}

#[test]
fn nan_cells_render_literally_and_right_align_as_numeric() {
    // `"NaN".parse::<f64>()` succeeds in Rust, so a NaN cell keeps the
    // column numeric (right-aligned) rather than flipping it to text.
    let t = ascii_table(
        &["name", "value"],
        &[
            vec!["a".to_string(), format!("{}", f64::NAN)],
            vec!["b".to_string(), "123.5".to_string()],
        ],
    );
    assert!(t.contains("|   NaN |"), "{t}");
    assert!(t.contains("| 123.5 |"), "{t}");
}

#[test]
fn series_csv_renders_non_finite_values_literally() {
    let csv = series_csv(
        ("x", "y"),
        &[(1.0, f64::NAN), (2.0, f64::INFINITY), (3.0, 0.5)],
    );
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines, ["x,y", "1,NaN", "2,inf", "3,0.5"]);
}

#[test]
fn markdown_table_escapes_pipes_and_newlines() {
    let t = markdown_table(
        &["metric", "note"],
        &[vec!["D(P*, P′)".to_string(), "a|b\nc".to_string()]],
    );
    assert!(t.contains("a\\|b<br>c"), "{t}");
    // Cell content never introduces extra columns: every line has the
    // same number of unescaped pipes.
    for line in t.lines() {
        let unescaped = line.replace("\\|", "").matches('|').count();
        assert_eq!(unescaped, 3, "wrong column count in {line:?}");
    }
}

#[test]
fn markdown_table_right_aligns_numeric_columns_and_handles_empty_rows() {
    let t = markdown_table(
        &["name", "value"],
        &[vec!["a".to_string(), "1.5".to_string()]],
    );
    let separator = t.lines().nth(1).unwrap();
    assert_eq!(separator, "| --- | ---: |");
    // No rows: header + separator only, with plain (non-numeric)
    // alignment markers.
    let empty = markdown_table(&["name", "value"], &[]);
    assert_eq!(empty, "| name | value |\n| --- | --- |\n");
}

#[test]
#[should_panic(expected = "ragged table rows")]
fn markdown_table_rejects_ragged_rows() {
    markdown_table(&["a", "b"], &[vec!["x".to_string()]]);
}

#[test]
fn markdown_escape_is_a_no_op_on_clean_text() {
    assert_eq!(markdown_escape("plain, text; §4.5"), "plain, text; §4.5");
}

#[test]
fn csv_field_quotes_exactly_when_needed() {
    // Untouched: no separator, quote, or line break.
    assert_eq!(csv_field("PerlinNoise"), "PerlinNoise");
    assert_eq!(csv_field("§4.5 Fig. 8"), "§4.5 Fig. 8");
    // Comma, quote, and newlines force RFC 4180 quoting.
    assert_eq!(csv_field("a,b"), "\"a,b\"");
    assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
    assert_eq!(csv_field("cr\rhere"), "\"cr\rhere\"");
    // A quoted field with an embedded quote round-trips: unquote +
    // un-double yields the original.
    let quoted = csv_field("say \"hi\", twice");
    let inner = &quoted[1..quoted.len() - 1];
    assert_eq!(inner.replace("\"\"", "\""), "say \"hi\", twice");
}

#[test]
fn markdown_and_csv_disagree_exactly_where_they_should() {
    // The same hostile cell goes through both pipelines: CSV keeps the
    // pipe and quotes the comma; Markdown escapes the pipe and keeps
    // the comma bare.
    let cell = "a|b, c";
    assert_eq!(csv_field(cell), "\"a|b, c\"");
    assert_eq!(markdown_escape(cell), "a\\|b, c");
}
