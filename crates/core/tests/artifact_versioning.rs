//! Model artifact versioning contract: legacy files, future format
//! versions and device mismatches each produce a distinct typed error,
//! and the save → load → predict round trip is lossless.

use gpufreq_core::{
    Corpus, Error, ModelArtifact, ModelConfig, Planner, TrainedPlanner, MODEL_FORMAT_VERSION,
};
use gpufreq_ml::SvrParams;
use gpufreq_sim::Device;

fn fast_planner(device: Device) -> TrainedPlanner {
    let config = ModelConfig {
        speedup: SvrParams {
            c: 10.0,
            max_iter: 100_000,
            ..SvrParams::paper_speedup()
        },
        energy: SvrParams {
            c: 10.0,
            max_iter: 100_000,
            ..SvrParams::paper_energy()
        },
    };
    Planner::builder()
        .device(device)
        .corpus(Corpus::Fast)
        .settings(8)
        .model_config(config)
        .train()
        .expect("fast training succeeds")
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("gpufreq-artifact-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn legacy_bare_model_json_is_a_typed_error() {
    // A pre-versioning file held the bare FreqScalingModel JSON; the
    // planner must refuse it with a retrain hint, not guess a device.
    let planner = fast_planner(Device::TitanX);
    let bare_model_json = planner.model().to_json();
    let err = ModelArtifact::from_json(&bare_model_json).unwrap_err();
    assert!(matches!(err, Error::LegacyArtifact), "{err}");
    assert!(err.to_string().contains("retrain"), "{err}");
}

#[test]
fn future_format_version_is_a_typed_error() {
    let planner = fast_planner(Device::TitanX);
    let future = planner.artifact().to_json().replacen(
        &format!("\"format_version\":{MODEL_FORMAT_VERSION}"),
        "\"format_version\":9999",
        1,
    );
    assert!(future.contains("9999"), "substitution failed: {future}");
    let err = ModelArtifact::from_json(&future).unwrap_err();
    match err {
        Error::UnsupportedFormatVersion { found, supported } => {
            assert_eq!(found, 9999);
            assert_eq!(supported, MODEL_FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedFormatVersion, got {other}"),
    }
}

#[test]
fn different_device_artifact_is_a_typed_error() {
    let planner = fast_planner(Device::TeslaK20c);
    let path = temp_path("k20c.json");
    planner.save(&path).unwrap();
    let err = TrainedPlanner::load_for_device(&path, Device::TitanX).unwrap_err();
    match err {
        Error::DeviceMismatch {
            artifact,
            requested,
        } => {
            assert_eq!(artifact, Device::TeslaK20c);
            assert_eq!(requested, Device::TitanX);
        }
        other => panic!("expected DeviceMismatch, got {other}"),
    }
    // Loading without a device expectation uses the recorded one.
    let loaded = TrainedPlanner::load(&path).unwrap();
    assert_eq!(loaded.device(), Device::TeslaK20c);
}

#[test]
fn non_model_objects_are_malformed_not_legacy() {
    // Only the bare-model shape (top-level `domains` + `scaler`) earns
    // the "retrain" hint; an arbitrary JSON object is just malformed.
    let err = ModelArtifact::from_json("{\"hello\": 1}").unwrap_err();
    assert!(matches!(err, Error::MalformedArtifact { .. }), "{err}");
    assert!(err.to_string().contains("format_version"), "{err}");
}

#[test]
fn envelope_disagreeing_with_model_is_rejected() {
    let planner = fast_planner(Device::TitanX);
    let json = planner.artifact().to_json();
    let edited = json.replacen("\"num_samples\":", "\"num_samples\":9", 1);
    assert_ne!(json, edited, "substitution failed");
    let err = ModelArtifact::from_json(&edited).unwrap_err();
    assert!(matches!(err, Error::MalformedArtifact { .. }), "{err}");
    assert!(err.to_string().contains("envelope metadata"), "{err}");
}

#[test]
fn corrupt_and_missing_files_are_typed_errors() {
    let path = temp_path("corrupt.json");
    std::fs::write(&path, "{\"format_version\": \"one\"}").unwrap();
    let err = ModelArtifact::load(&path).unwrap_err();
    assert!(matches!(err, Error::MalformedArtifact { .. }), "{err}");

    let err = ModelArtifact::load(temp_path("does-not-exist.json")).unwrap_err();
    assert!(matches!(err, Error::Io { .. }), "{err}");

    std::fs::write(&path, "[1, 2, 3]").unwrap();
    let err = ModelArtifact::load(&path).unwrap_err();
    assert!(matches!(err, Error::MalformedArtifact { .. }), "{err}");
}

#[test]
fn artifact_with_no_trained_domains_is_rejected() {
    // A structurally valid envelope around a degenerate (zero-domain)
    // model must fail at load time, not panic at prediction time.
    let planner = fast_planner(Device::TitanX);
    let json = planner.artifact().to_json();
    let gutted = json.replacen("\"domains\":[{", "\"domains\":[], \"unused\":[{", 1);
    assert_ne!(json, gutted, "substitution failed");
    let err = ModelArtifact::from_json(&gutted).unwrap_err();
    assert!(matches!(err, Error::MalformedArtifact { .. }), "{err}");
    assert!(
        err.to_string().contains("no trained memory domains"),
        "{err}"
    );
}

#[test]
fn round_trip_preserves_metadata_and_predictions() {
    let planner = fast_planner(Device::TitanX);
    let path = temp_path("titan-x.json");
    planner.save(&path).unwrap();
    let loaded = TrainedPlanner::load(&path).unwrap();

    let artifact = loaded.artifact();
    assert_eq!(artifact.format_version, MODEL_FORMAT_VERSION);
    assert_eq!(artifact.device, Device::TitanX);
    assert_eq!(artifact.trained_domains, planner.model().trained_domains());
    assert_eq!(artifact.num_samples, planner.model().trained_on());
    assert_eq!(artifact, planner.artifact());

    // Predictions from the reloaded planner are bit-identical.
    let features = gpufreq_workloads::workload("aes")
        .expect("aes is one of the twelve benchmarks")
        .static_features();
    assert_eq!(
        planner.predict(&features).unwrap(),
        loaded.predict(&features).unwrap()
    );
}
