//! Concurrency stress test of the bounded [`ProfileCache`]: N threads
//! hammering M sources (more sources than capacity, so eviction churns
//! constantly) must keep the counters and `len()` consistent, and
//! eviction must never invalidate an `Arc` a thread is still holding.

use gpufreq_core::ProfileCache;
use std::sync::Arc;

fn kernel_source(i: usize) -> String {
    format!(
        "__kernel void k{i}(__global float* x) {{
            uint t = get_global_id(0);
            x[t] = x[t] * {i}.0f + 1.0f;
        }}"
    )
}

#[test]
fn bounded_cache_survives_concurrent_churn() {
    const THREADS: usize = 8;
    const SOURCES: usize = 24;
    const CAPACITY: usize = 8; // far below SOURCES: constant eviction
    const ROUNDS: usize = 12;

    let cache = Arc::new(ProfileCache::with_capacity(CAPACITY));
    let sources: Vec<String> = (0..SOURCES).map(kernel_source).collect();

    let per_thread_calls = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let sources = &sources;
                s.spawn(move || {
                    let mut calls = 0usize;
                    // Each thread walks the sources with its own
                    // stride, holding every Arc to the end of the
                    // round — so entries are routinely evicted while
                    // still referenced.
                    for round in 0..ROUNDS {
                        let mut held = Vec::new();
                        for i in 0..SOURCES {
                            let idx = (i * (t + 1) + round) % SOURCES;
                            let analyzed = cache
                                .analyze(&sources[idx])
                                .expect("every generated kernel analyzes");
                            assert_eq!(
                                analyzed.1.name,
                                format!("k{idx}"),
                                "an Arc must always hold its own source's analysis"
                            );
                            held.push(analyzed);
                            calls += 1;
                        }
                        // Every held Arc stays fully usable, evicted
                        // or not.
                        for h in &held {
                            assert!(h.0.values().iter().all(|v| v.is_finite()));
                        }
                    }
                    calls
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stress thread panicked"))
            .sum::<usize>()
    });

    let total_calls = THREADS * SOURCES * ROUNDS;
    assert_eq!(per_thread_calls, total_calls);
    // Every call was either a hit or a miss, exactly once.
    assert_eq!(
        cache.hits() + cache.misses(),
        total_calls,
        "hits + misses must equal the number of analyze() calls"
    );
    // The bound held: never more resident entries than capacity.
    assert!(
        cache.len() <= CAPACITY,
        "len {} exceeds capacity {CAPACITY}",
        cache.len()
    );
    // With 24 sources cycling through 8 slots there must be plenty of
    // churn, and the books must balance: every miss either inserted a
    // new entry (possibly coalescing with a racing miss) and every
    // eviction removed one, so evictions < misses and the resident
    // count is consistent with both.
    assert!(cache.evictions() > 0, "capacity pressure must evict");
    assert!(
        cache.evictions() <= cache.misses(),
        "can't evict more entries than were ever inserted"
    );
    assert!(
        cache.misses() >= SOURCES,
        "each source misses at least once"
    );
}

#[test]
fn unbounded_cache_counters_stay_consistent_under_concurrency() {
    const THREADS: usize = 8;
    const SOURCES: usize = 6;
    const PER_THREAD: usize = 48;

    let cache = ProfileCache::shared();
    let sources: Vec<String> = (0..SOURCES).map(kernel_source).collect();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            let sources = &sources;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let idx = (i + t) % SOURCES;
                    cache.analyze(&sources[idx]).expect("kernels analyze");
                }
            });
        }
    });
    assert_eq!(cache.hits() + cache.misses(), THREADS * PER_THREAD);
    assert_eq!(cache.len(), SOURCES, "every distinct source resident");
    assert_eq!(cache.evictions(), 0, "unbounded caches never evict");
    // Racing first-misses may both analyze, but at least one miss per
    // distinct source happened and hits dominate afterwards.
    assert!(cache.misses() >= SOURCES);
    assert!(cache.hits() >= THREADS * PER_THREAD - THREADS * SOURCES);
}
