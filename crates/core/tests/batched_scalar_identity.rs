//! Property pin: the batched prediction pipeline produces byte-identical
//! `ParetoPrediction` JSON to a scalar re-derivation of the historical
//! per-point path, across random kernels and all three devices' actual
//! configuration blocks.
//!
//! [`predict_pareto_at`] (and the [`PredictPlan`] the planner serves
//! from) now scores through flattened per-domain matrices; the scalar
//! reference below rebuilds the prediction exactly the way the
//! pre-refactor code did — one [`FreqScalingModel::predict_objectives`]
//! call per candidate, Algorithm 1, then the mem-L heuristic append —
//! so any reassociation or reordering slipped into the batched path
//! shows up as a byte diff here.

use gpufreq_core::{
    predict_pareto_at, Corpus, FreqScalingModel, ModelConfig, ParetoPrediction, Planner,
    PredictPlan, PredictedPoint, MEM_L_MHZ,
};
use gpufreq_kernel::{FreqConfig, StaticFeatures, NUM_STATIC_FEATURES};
use gpufreq_pareto::{pareto_set_simple, Objectives};
use gpufreq_sim::{ClockTable, Device};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One model trained once for the whole suite (cross-device prediction
/// is supported: unseen memory clocks fall back to the nearest domain,
/// so the Titan X model exercises every device's config block).
fn model() -> &'static FreqScalingModel {
    static MODEL: OnceLock<FreqScalingModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        Planner::builder()
            .corpus(Corpus::Fast)
            .settings(8)
            .model_config(ModelConfig::relaxed())
            .train()
            .expect("fast corpus trains")
            .model()
            .clone()
    })
}

/// The historical scalar path, re-derived: per-point scalar scoring,
/// Algorithm 1, heuristic append.
fn scalar_reference(
    model: &FreqScalingModel,
    features: &StaticFeatures,
    clocks: &ClockTable,
    candidates: &[FreqConfig],
) -> ParetoPrediction {
    if candidates.is_empty() {
        return ParetoPrediction {
            all_points: Vec::new(),
            pareto_set: Vec::new(),
        };
    }
    let all_points: Vec<PredictedPoint> = candidates
        .iter()
        .filter(|c| c.mem_mhz > MEM_L_MHZ)
        .map(|&config| PredictedPoint {
            config,
            objectives: model.predict_objectives(features, config),
            heuristic: false,
        })
        .collect();
    let objectives: Vec<Objectives> = all_points.iter().map(|p| p.objectives).collect();
    let mut pareto_set: Vec<PredictedPoint> = pareto_set_simple(&objectives)
        .into_iter()
        .map(|i| all_points[i])
        .collect();
    if let Some(mem_l_last) = clocks.actual_configs_for(MEM_L_MHZ).into_iter().last() {
        pareto_set.push(PredictedPoint {
            config: mem_l_last,
            objectives: model.predict_objectives(features, mem_l_last),
            heuristic: true,
        });
    }
    ParetoPrediction {
        all_points,
        pareto_set,
    }
}

/// Deterministic feature generator (SplitMix64; no RNG dependency).
fn random_features(seed: u64) -> StaticFeatures {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut values = [0.0; NUM_STATIC_FEATURES];
    for v in &mut values {
        *v = (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) * 0.2;
    }
    StaticFeatures::from_values(values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched vs scalar over every device's full actual-config block:
    /// the serialized predictions must be byte-identical.
    #[test]
    fn batched_json_equals_scalar_reference(seed in 0u64..100_000) {
        let model = model();
        let features = random_features(seed);
        for device in Device::all() {
            let sim = device.simulator();
            let clocks = &sim.spec().clocks;
            let candidates = clocks.actual_configs();
            let batched = predict_pareto_at(model, &features, clocks, &candidates);
            let reference = scalar_reference(model, &features, clocks, &candidates);
            prop_assert_eq!(
                serde_json::to_string(&batched).unwrap(),
                serde_json::to_string(&reference).unwrap()
            );
            // The planner's precomputed plan takes the same path.
            let plan = PredictPlan::full(model, clocks);
            prop_assert_eq!(
                serde_json::to_string(&plan.predict(&features)).unwrap(),
                serde_json::to_string(&reference).unwrap()
            );
        }
    }
}
