//! The [`Planner`] façade: one typed, fallible entry point for the
//! whole train → persist → predict → evaluate workflow.
//!
//! The paper's deployment story (train once on the synthetic corpus,
//! persist the model, predict Pareto-optimal frequency settings for
//! unseen kernels at the driver level) previously had to be assembled
//! by hand from free functions. The façade packages it:
//!
//! ```no_run
//! use gpufreq_core::{Corpus, Planner};
//! use gpufreq_sim::Device;
//!
//! # fn main() -> Result<(), gpufreq_core::Error> {
//! let planner = Planner::builder()
//!     .device(Device::TitanX)
//!     .corpus(Corpus::Full)
//!     .settings(40)
//!     .train()?;
//! let prediction = planner.predict_source(
//!     "__kernel void scale(__global float* x) {
//!          uint i = get_global_id(0);
//!          x[i] = x[i] * 2.0f;
//!      }",
//! )?;
//! planner.save("model.json")?;
//! # Ok(())
//! # }
//! ```
//!
//! Every method returns [`Result`]: malformed kernels, empty corpora,
//! unknown devices and corrupt or mismatched artifacts are typed
//! [`Error`] values, never panics.

use crate::artifact::ModelArtifact;
use crate::error::{Error, Result};
use crate::evaluate::{evaluate_all, BenchmarkEvaluation};
use crate::model::{FreqScalingModel, ModelConfig};
use crate::pipeline::build_training_data;
use crate::predict::{predict_pareto_at, ParetoPrediction};
use gpufreq_kernel::{
    analyze_kernel_with, parse, AnalysisConfig, FreqConfig, KernelProfile, LaunchConfig,
    StaticFeatures,
};
use gpufreq_sim::{Device, GpuSimulator};
use std::path::Path;

/// Which slice of the 106 synthetic micro-benchmarks to train on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Corpus {
    /// All 106 micro-benchmarks (the paper's training set).
    #[default]
    Full,
    /// Every third micro-benchmark — for smoke tests and interactive
    /// use, at reduced accuracy.
    Fast,
}

impl Corpus {
    fn benchmarks(self) -> Vec<gpufreq_synth::MicroBenchmark> {
        let all = gpufreq_synth::generate_all();
        match self {
            Corpus::Full => all,
            Corpus::Fast => all.into_iter().step_by(3).collect(),
        }
    }
}

/// Entry point to the façade; see [`Planner::builder`].
#[derive(Debug, Clone, Copy)]
pub struct Planner;

impl Planner {
    /// Start configuring a training run. Defaults: Titan X, full
    /// corpus, 40 sampled settings, the paper's hyper-parameters.
    pub fn builder() -> PlannerBuilder {
        PlannerBuilder::default()
    }
}

/// Builder for a training run; finished by
/// [`train`](PlannerBuilder::train).
#[derive(Debug, Clone)]
pub struct PlannerBuilder {
    device: Device,
    corpus: Corpus,
    settings: usize,
    config: ModelConfig,
}

impl Default for PlannerBuilder {
    fn default() -> PlannerBuilder {
        PlannerBuilder {
            device: Device::TitanX,
            corpus: Corpus::Full,
            settings: gpufreq_synth::TRAINING_SETTINGS,
            config: ModelConfig::default(),
        }
    }
}

impl PlannerBuilder {
    /// The device to train on (default: [`Device::TitanX`]).
    pub fn device(mut self, device: Device) -> PlannerBuilder {
        self.device = device;
        self
    }

    /// The training corpus (default: [`Corpus::Full`]).
    pub fn corpus(mut self, corpus: Corpus) -> PlannerBuilder {
        self.corpus = corpus;
        self
    }

    /// Sampled frequency settings per micro-benchmark (default: 40,
    /// the paper's choice).
    pub fn settings(mut self, settings: usize) -> PlannerBuilder {
        self.settings = settings;
        self
    }

    /// SVR hyper-parameters (default: the paper's `C = 1000`,
    /// `ε = 0.1`, `γ = 0.1`).
    pub fn model_config(mut self, config: ModelConfig) -> PlannerBuilder {
        self.config = config;
        self
    }

    /// Run the training phase (Fig. 2): sweep the corpus on the
    /// device's simulator and fit the per-domain SVR heads.
    ///
    /// # Errors
    /// [`Error::EmptyCorpus`] when the corpus × settings product is
    /// zero samples.
    pub fn train(self) -> Result<TrainedPlanner> {
        let sim = self.device.simulator();
        let data = build_training_data(&sim, &self.corpus.benchmarks(), self.settings);
        let model = FreqScalingModel::try_train(&data, &self.config)?;
        Ok(TrainedPlanner {
            artifact: ModelArtifact::new(self.device, model),
            sim,
        })
    }
}

/// A trained planner: the model, its artifact metadata, and the
/// simulator of the device it was trained on.
#[derive(Debug, Clone)]
pub struct TrainedPlanner {
    artifact: ModelArtifact,
    sim: GpuSimulator,
}

impl TrainedPlanner {
    /// Wrap an already-validated artifact (e.g. from
    /// [`ModelArtifact::load`]).
    pub fn from_artifact(artifact: ModelArtifact) -> TrainedPlanner {
        let sim = artifact.device.simulator();
        TrainedPlanner { artifact, sim }
    }

    /// Load a persisted artifact, validating format version and JSON
    /// shape; the planner targets the device recorded in the artifact.
    pub fn load(path: impl AsRef<Path>) -> Result<TrainedPlanner> {
        Ok(TrainedPlanner::from_artifact(ModelArtifact::load(path)?))
    }

    /// Like [`load`](TrainedPlanner::load), but additionally require
    /// the artifact to have been trained on `device`.
    ///
    /// # Errors
    /// [`Error::DeviceMismatch`] when the artifact records a different
    /// device.
    pub fn load_for_device(path: impl AsRef<Path>, device: Device) -> Result<TrainedPlanner> {
        let artifact = ModelArtifact::load(path)?;
        artifact.expect_device(device)?;
        Ok(TrainedPlanner::from_artifact(artifact))
    }

    /// Persist the versioned artifact to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        self.artifact.save(path)
    }

    /// The device this planner predicts for.
    pub fn device(&self) -> Device {
        self.artifact.device
    }

    /// The trained model.
    pub fn model(&self) -> &FreqScalingModel {
        &self.artifact.model
    }

    /// The artifact envelope (version, device, domains, corpus size).
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// The simulator of the trained device.
    pub fn simulator(&self) -> &GpuSimulator {
        &self.sim
    }

    /// Predict the Pareto-optimal frequency settings for a kernel with
    /// `features` over every actual configuration of the device
    /// (Fig. 3).
    ///
    /// # Errors
    /// [`Error::NonFiniteFeatures`] when the feature vector contains
    /// NaN or infinite components.
    pub fn predict(&self, features: &StaticFeatures) -> Result<ParetoPrediction> {
        let clocks = &self.sim.spec().clocks;
        self.predict_at(features, &clocks.actual_configs())
    }

    /// [`predict`](TrainedPlanner::predict) over an explicit candidate
    /// list (the evaluation predicts at the same sampled settings the
    /// ground truth is measured at).
    pub fn predict_at(
        &self,
        features: &StaticFeatures,
        candidates: &[FreqConfig],
    ) -> Result<ParetoPrediction> {
        if features.values().iter().any(|v| !v.is_finite()) {
            return Err(Error::NonFiniteFeatures);
        }
        Ok(predict_pareto_at(
            &self.artifact.model,
            features,
            &self.sim.spec().clocks,
            candidates,
        ))
    }

    /// Parse and analyze OpenCL-C `source`, then
    /// [`predict`](TrainedPlanner::predict) for its first kernel.
    pub fn predict_source(&self, source: &str) -> Result<ParetoPrediction> {
        let (features, _) = analyze_source(source, None)?;
        self.predict(&features)
    }

    /// Evaluate the planner on the paper's twelve test benchmarks
    /// (ground-truth sweep + prediction at the same settings), in
    /// Table 2 order.
    pub fn evaluate(&self) -> Result<Vec<BenchmarkEvaluation>> {
        Ok(evaluate_all(
            &self.sim,
            &self.artifact.model,
            &gpufreq_workloads::all_workloads(),
        ))
    }

    /// Evaluate on a single named workload.
    ///
    /// # Errors
    /// [`Error::UnknownWorkload`] when `name` is not one of the twelve.
    pub fn evaluate_workload(&self, name: &str) -> Result<BenchmarkEvaluation> {
        let workload = gpufreq_workloads::workload(name).ok_or_else(|| Error::UnknownWorkload {
            name: name.to_string(),
        })?;
        Ok(crate::evaluate::evaluate_workload(
            &self.sim,
            &self.artifact.model,
            &workload,
        ))
    }
}

/// Parse and statically analyze an OpenCL-C kernel source, returning
/// the static features and execution profile of its first kernel.
///
/// `path` is only used to prefix diagnostics; pass `None` for
/// in-memory sources.
pub fn analyze_source(source: &str, path: Option<&str>) -> Result<(StaticFeatures, KernelProfile)> {
    let owned_path = || path.map(|p| p.to_string());
    let program = parse(source).map_err(|source| Error::KernelParse {
        path: owned_path(),
        source,
    })?;
    let kernel = program
        .first_kernel()
        .ok_or(Error::NoKernelFound { path: owned_path() })?;
    let config = AnalysisConfig::default();
    let analysis =
        analyze_kernel_with(kernel, &config).map_err(|source| Error::KernelAnalysis {
            path: owned_path(),
            source,
        })?;
    let profile =
        KernelProfile::from_kernel(kernel, &config, LaunchConfig::default()).map_err(|source| {
            Error::KernelAnalysis {
                path: owned_path(),
                source,
            }
        })?;
    Ok((StaticFeatures::from_analysis(&analysis), profile))
}

/// Read a kernel source file and [`analyze_source`] it.
pub fn analyze_kernel_file(path: impl AsRef<Path>) -> Result<(StaticFeatures, KernelProfile)> {
    let path = path.as_ref();
    let display = path.display().to_string();
    let source = std::fs::read_to_string(path).map_err(|source| Error::Io {
        path: display.clone(),
        source,
    })?;
    analyze_source(&source, Some(&display))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_ml::SvrParams;

    fn fast_planner(device: Device) -> TrainedPlanner {
        let config = ModelConfig {
            speedup: SvrParams {
                c: 10.0,
                ..SvrParams::paper_speedup()
            },
            energy: SvrParams {
                c: 10.0,
                ..SvrParams::paper_energy()
            },
        };
        Planner::builder()
            .device(device)
            .corpus(Corpus::Fast)
            .settings(10)
            .model_config(config)
            .train()
            .unwrap()
    }

    #[test]
    fn builder_trains_and_predicts() {
        let planner = fast_planner(Device::TitanX);
        assert_eq!(planner.device(), Device::TitanX);
        let features = gpufreq_workloads::workload("knn")
            .unwrap()
            .static_features();
        let prediction = planner.predict(&features).unwrap();
        assert!(!prediction.pareto_set.is_empty());
    }

    #[test]
    fn zero_settings_is_an_empty_corpus_error() {
        let err = Planner::builder()
            .corpus(Corpus::Fast)
            .settings(0)
            .train()
            .unwrap_err();
        assert!(matches!(err, Error::EmptyCorpus), "{err}");
    }

    #[test]
    fn non_finite_features_are_rejected() {
        let planner = fast_planner(Device::TitanX);
        let mut values = *gpufreq_workloads::workload("knn")
            .unwrap()
            .static_features()
            .values();
        values[0] = f64::NAN;
        let features = StaticFeatures::from_values(values);
        let err = planner.predict(&features).unwrap_err();
        assert!(matches!(err, Error::NonFiniteFeatures), "{err}");
    }

    #[test]
    fn predict_source_rejects_bad_kernels() {
        let planner = fast_planner(Device::TitanX);
        let err = planner
            .predict_source("int main() { return 0; }")
            .unwrap_err();
        assert!(
            matches!(err, Error::KernelParse { .. } | Error::NoKernelFound { .. }),
            "{err}"
        );
        let ok = planner.predict_source(
            "__kernel void scale(__global float* x) {
                 uint i = get_global_id(0);
                 x[i] = x[i] * 2.0f;
             }",
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let planner = fast_planner(Device::TeslaP100);
        let dir = std::env::temp_dir().join("gpufreq-planner-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p100.json");
        planner.save(&path).unwrap();
        let loaded = TrainedPlanner::load(&path).unwrap();
        assert_eq!(loaded.device(), Device::TeslaP100);
        assert_eq!(loaded.artifact(), planner.artifact());
        let features = gpufreq_workloads::workload("mt").unwrap().static_features();
        assert_eq!(
            planner.predict(&features).unwrap(),
            loaded.predict(&features).unwrap()
        );
        // Loading for the wrong device is a typed mismatch.
        let err = TrainedPlanner::load_for_device(&path, Device::TitanX).unwrap_err();
        assert!(matches!(err, Error::DeviceMismatch { .. }), "{err}");
    }

    #[test]
    fn unknown_workload_is_a_typed_error() {
        let planner = fast_planner(Device::TitanX);
        let err = planner.evaluate_workload("nbody").unwrap_err();
        assert!(matches!(err, Error::UnknownWorkload { .. }), "{err}");
    }

    #[test]
    fn analyze_kernel_file_reports_io_errors() {
        let err = analyze_kernel_file("/does/not/exist.cl").unwrap_err();
        assert!(matches!(err, Error::Io { .. }), "{err}");
    }
}
