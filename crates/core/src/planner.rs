//! The [`Planner`] façade: one typed, fallible entry point for the
//! whole train → persist → predict → evaluate workflow.
//!
//! The paper's deployment story (train once on the synthetic corpus,
//! persist the model, predict Pareto-optimal frequency settings for
//! unseen kernels at the driver level) previously had to be assembled
//! by hand from free functions. The façade packages it:
//!
//! ```no_run
//! use gpufreq_core::{Corpus, Planner};
//! use gpufreq_sim::Device;
//!
//! # fn main() -> Result<(), gpufreq_core::Error> {
//! let planner = Planner::builder()
//!     .device(Device::TitanX)
//!     .corpus(Corpus::Full)
//!     .settings(40)
//!     .train()?;
//! let prediction = planner.predict_source(
//!     "__kernel void scale(__global float* x) {
//!          uint i = get_global_id(0);
//!          x[i] = x[i] * 2.0f;
//!      }",
//! )?;
//! planner.save("model.json")?;
//! # Ok(())
//! # }
//! ```
//!
//! Every method returns [`Result`]: malformed kernels, empty corpora,
//! unknown devices and corrupt or mismatched artifacts are typed
//! [`Error`] values, never panics.

use crate::artifact::ModelArtifact;
use crate::engine::{Engine, ProfileCache};
use crate::error::{Error, Result};
use crate::evaluate::{evaluate_all_with, BenchmarkEvaluation};
use crate::model::{FreqScalingModel, ModelConfig};
use crate::pipeline::build_training_data_with;
use crate::predict::{predict_pareto_scored, ParetoPrediction, PredictPlan};
use gpufreq_kernel::{
    analyze_kernel_with, parse, AnalysisConfig, FreqConfig, KernelProfile, LaunchConfig,
    StaticFeatures,
};
use gpufreq_sim::{Device, GpuSimulator};
use std::path::Path;
use std::sync::Arc;

/// Which slice of the 106 synthetic micro-benchmarks to train on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Corpus {
    /// All 106 micro-benchmarks (the paper's training set).
    #[default]
    Full,
    /// Every third micro-benchmark — for smoke tests and interactive
    /// use, at reduced accuracy.
    Fast,
}

impl Corpus {
    fn benchmarks(self) -> Vec<gpufreq_synth::MicroBenchmark> {
        let all = gpufreq_synth::generate_all();
        match self {
            Corpus::Full => all,
            Corpus::Fast => all.into_iter().step_by(3).collect(),
        }
    }
}

/// Entry point to the façade; see [`Planner::builder`].
#[derive(Debug, Clone, Copy)]
pub struct Planner;

impl Planner {
    /// Start configuring a training run. Defaults: Titan X, full
    /// corpus, 40 sampled settings, the paper's hyper-parameters.
    ///
    /// This example really trains (a reduced corpus with the relaxed
    /// test preset, so it finishes in seconds) and runs under
    /// `cargo test --doc`:
    ///
    /// ```
    /// use gpufreq_core::{Corpus, ModelConfig, Planner};
    /// use gpufreq_sim::Device;
    ///
    /// let planner = Planner::builder()
    ///     .device(Device::TitanX)
    ///     .corpus(Corpus::Fast)
    ///     .settings(4)
    ///     .model_config(ModelConfig::relaxed())
    ///     .train()?;
    /// assert_eq!(planner.device(), Device::TitanX);
    /// assert!(planner.model().trained_on() > 0);
    /// # Ok::<(), gpufreq_core::Error>(())
    /// ```
    pub fn builder() -> PlannerBuilder {
        PlannerBuilder::default()
    }

    /// Train one planner per registered device (Titan X, Tesla P100,
    /// Tesla K20c) concurrently, at the paper's defaults — the
    /// portability study (§4.1) in one call. Planners come back in
    /// [`Device::all`] order and share one [`ProfileCache`].
    ///
    /// Equivalent to
    /// `Planner::builder().train_all_devices()`; use the builder to
    /// reduce the corpus or pin the worker count first.
    pub fn train_all_devices() -> Result<Vec<TrainedPlanner>> {
        Planner::builder().train_all_devices()
    }
}

/// Builder for a training run; finished by
/// [`train`](PlannerBuilder::train).
#[derive(Debug, Clone)]
pub struct PlannerBuilder {
    device: Device,
    corpus: Corpus,
    settings: usize,
    config: ModelConfig,
    engine: Engine,
}

impl Default for PlannerBuilder {
    fn default() -> PlannerBuilder {
        PlannerBuilder {
            device: Device::TitanX,
            corpus: Corpus::Full,
            settings: gpufreq_synth::TRAINING_SETTINGS,
            config: ModelConfig::default(),
            engine: Engine::default(),
        }
    }
}

impl PlannerBuilder {
    /// The device to train on (default: [`Device::TitanX`]).
    pub fn device(mut self, device: Device) -> PlannerBuilder {
        self.device = device;
        self
    }

    /// The training corpus (default: [`Corpus::Full`]).
    pub fn corpus(mut self, corpus: Corpus) -> PlannerBuilder {
        self.corpus = corpus;
        self
    }

    /// Sampled frequency settings per micro-benchmark (default: 40,
    /// the paper's choice).
    pub fn settings(mut self, settings: usize) -> PlannerBuilder {
        self.settings = settings;
        self
    }

    /// SVR hyper-parameters (default: the paper's `C = 1000`,
    /// `ε = 0.1`, `γ = 0.1`).
    pub fn model_config(mut self, config: ModelConfig) -> PlannerBuilder {
        self.config = config;
        self
    }

    /// Worker threads for the training sweep, head fits, and every
    /// parallel method of the resulting planner. `None` (the default)
    /// uses every core; `Some(1)` is strictly serial. The trained model
    /// is bit-identical for every value — only wall-clock changes
    /// (pinned by `tests/determinism.rs`).
    pub fn jobs(mut self, jobs: Option<usize>) -> PlannerBuilder {
        self.engine = Engine::new(jobs);
        self
    }

    /// Run the training phase (Fig. 2): sweep the corpus on the
    /// device's simulator and fit the per-domain SVR heads, fanning
    /// both out over the configured [`jobs`](PlannerBuilder::jobs).
    ///
    /// # Errors
    /// [`Error::EmptyCorpus`] when the corpus × settings product is
    /// zero samples.
    pub fn train(self) -> Result<TrainedPlanner> {
        let engine = self.engine;
        self.train_with(&engine, ProfileCache::shared())
    }

    /// Train one planner per registered device concurrently, sharing
    /// one [`ProfileCache`], in [`Device::all`] order — the
    /// portability study (§4.1). The builder's `device` is ignored;
    /// every other knob (corpus, settings, model config, jobs) applies
    /// to each device's run.
    ///
    /// Device-level runs are outer work items; each run's internal
    /// stages go serial while the outer level fans out
    /// ([`Engine::inner`]).
    pub fn train_all_devices(self) -> Result<Vec<TrainedPlanner>> {
        let engine = self.engine;
        let cache = ProfileCache::shared();
        let devices = Device::all();
        let inner = engine.inner(devices.len());
        let results: Vec<Result<TrainedPlanner>> = engine.map(&devices, |device| {
            self.clone()
                .device(*device)
                .train_with(&inner, Arc::clone(&cache))
        });
        results.into_iter().collect()
    }

    fn train_with(self, engine: &Engine, cache: Arc<ProfileCache>) -> Result<TrainedPlanner> {
        let sim = self.device.simulator();
        let data = build_training_data_with(engine, &sim, &self.corpus.benchmarks(), self.settings);
        let model = FreqScalingModel::try_train_with(engine, &data, &self.config)?;
        let plan = Arc::new(PredictPlan::full(&model, &sim.spec().clocks));
        Ok(TrainedPlanner {
            artifact: ModelArtifact::new(self.device, model),
            sim,
            engine: self.engine,
            cache,
            plan,
        })
    }
}

/// A trained planner: the model, its artifact metadata, the simulator
/// of the device it was trained on, plus the [`Engine`] and shared
/// [`ProfileCache`] its batch methods use.
///
/// At build/load time the planner also precomputes its
/// [`PredictPlan`] — the batched scoring form of the model over every
/// actual configuration of the device — so a predict is one analysis
/// plus one scoring sweep. The plan changes only when the model does
/// (retrain or reload), which is the natural hook for hot-swapping
/// models in a running daemon: build the new plan off to the side,
/// then swap the planner in.
#[derive(Debug, Clone)]
pub struct TrainedPlanner {
    artifact: ModelArtifact,
    sim: GpuSimulator,
    engine: Engine,
    cache: Arc<ProfileCache>,
    plan: Arc<PredictPlan>,
}

impl TrainedPlanner {
    /// Wrap an already-validated artifact (e.g. from
    /// [`ModelArtifact::load`]).
    pub fn from_artifact(artifact: ModelArtifact) -> TrainedPlanner {
        let sim = artifact.device.simulator();
        let plan = Arc::new(PredictPlan::full(&artifact.model, &sim.spec().clocks));
        TrainedPlanner {
            artifact,
            sim,
            engine: Engine::default(),
            cache: ProfileCache::shared(),
            plan,
        }
    }

    /// Replace the engine driving [`predict_batch`] and
    /// [`evaluate`](TrainedPlanner::evaluate); `Some(1)` pins them
    /// serial, `None` uses every core. Results are identical either
    /// way.
    ///
    /// [`predict_batch`]: TrainedPlanner::predict_batch
    pub fn with_jobs(mut self, jobs: Option<usize>) -> TrainedPlanner {
        self.engine = Engine::new(jobs);
        self
    }

    /// Share `cache` with this planner (and with whoever else holds
    /// it): kernels already analyzed — by another planner, the CLI, or
    /// a previous batch — are never re-analyzed.
    pub fn with_cache(mut self, cache: Arc<ProfileCache>) -> TrainedPlanner {
        self.cache = cache;
        self
    }

    /// The kernel-analysis cache backing [`predict_source`] and
    /// [`predict_batch`]; clone the [`Arc`] to share it.
    ///
    /// [`predict_source`]: TrainedPlanner::predict_source
    /// [`predict_batch`]: TrainedPlanner::predict_batch
    pub fn cache(&self) -> &Arc<ProfileCache> {
        &self.cache
    }

    /// The engine this planner's parallel methods run on.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Load a persisted artifact, validating format version and JSON
    /// shape; the planner targets the device recorded in the artifact.
    pub fn load(path: impl AsRef<Path>) -> Result<TrainedPlanner> {
        Ok(TrainedPlanner::from_artifact(ModelArtifact::load(path)?))
    }

    /// Like [`load`](TrainedPlanner::load), but additionally require
    /// the artifact to have been trained on `device`.
    ///
    /// # Errors
    /// [`Error::DeviceMismatch`] when the artifact records a different
    /// device.
    pub fn load_for_device(path: impl AsRef<Path>, device: Device) -> Result<TrainedPlanner> {
        let artifact = ModelArtifact::load(path)?;
        artifact.expect_device(device)?;
        Ok(TrainedPlanner::from_artifact(artifact))
    }

    /// Persist the versioned artifact to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        self.artifact.save(path)
    }

    /// The device this planner predicts for.
    pub fn device(&self) -> Device {
        self.artifact.device
    }

    /// The trained model.
    pub fn model(&self) -> &FreqScalingModel {
        &self.artifact.model
    }

    /// The artifact envelope (version, device, domains, corpus size).
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// The simulator of the trained device.
    pub fn simulator(&self) -> &GpuSimulator {
        &self.sim
    }

    /// Predict the Pareto-optimal frequency settings for a kernel with
    /// `features` over every actual configuration of the device
    /// (Fig. 3).
    ///
    /// # Errors
    /// [`Error::NonFiniteFeatures`] when the feature vector contains
    /// NaN or infinite components.
    pub fn predict(&self, features: &StaticFeatures) -> Result<ParetoPrediction> {
        if features.values().iter().any(|v| !v.is_finite()) {
            return Err(Error::NonFiniteFeatures);
        }
        Ok(self.plan.predict(features))
    }

    /// [`predict`](TrainedPlanner::predict) over an explicit candidate
    /// list (the evaluation predicts at the same sampled settings the
    /// ground truth is measured at). Reuses the planner's prebuilt
    /// scorer; only the per-candidate metadata is rebuilt for the
    /// ad-hoc list.
    pub fn predict_at(
        &self,
        features: &StaticFeatures,
        candidates: &[FreqConfig],
    ) -> Result<ParetoPrediction> {
        if features.values().iter().any(|v| !v.is_finite()) {
            return Err(Error::NonFiniteFeatures);
        }
        Ok(predict_pareto_scored(
            self.plan.scorer(),
            features,
            &self.sim.spec().clocks,
            candidates,
        ))
    }

    /// The precomputed prediction pipeline this planner serves from.
    pub fn plan(&self) -> &PredictPlan {
        &self.plan
    }

    /// Parse and analyze OpenCL-C `source` through the shared
    /// [`ProfileCache`], then [`predict`](TrainedPlanner::predict) for
    /// its first kernel. A source seen before — by this planner or any
    /// planner sharing the cache — skips parsing and analysis.
    pub fn predict_source(&self, source: &str) -> Result<ParetoPrediction> {
        let analyzed = self.cache.analyze(source)?;
        self.predict(&analyzed.0)
    }

    /// [`predict_source`](TrainedPlanner::predict_source) for a whole
    /// batch of kernel sources, fanned out over this planner's
    /// [`Engine`].
    ///
    /// Result `i` is exactly what `predict_source(sources[i])` returns
    /// — including the error cases (a malformed kernel yields an `Err`
    /// in its slot without disturbing its neighbours) — and the output
    /// is bit-identical for every worker count. Duplicate sources are
    /// analyzed once thanks to the shared cache; every prediction still
    /// runs, since identical kernels still need their own result slot.
    ///
    /// The sources may be anything string-shaped — `&[&str]`,
    /// `&[String]`, `&[Arc<str>]` — so callers holding owned
    /// `String`s (a server's request decoder, file readers) don't
    /// rebuild a borrow slice first.
    ///
    /// ```
    /// use gpufreq_core::{Corpus, ModelConfig, Planner};
    ///
    /// let planner = Planner::builder()
    ///     .corpus(Corpus::Fast)
    ///     .settings(4)
    ///     .model_config(ModelConfig::relaxed())
    ///     .train()?
    ///     .with_jobs(Some(2));
    /// let saxpy = "__kernel void saxpy(__global float* x, __global float* y, float a) {
    ///                  uint i = get_global_id(0);
    ///                  y[i] = a * x[i] + y[i];
    ///              }";
    /// // Owned and borrowed sources alike, no conversion needed:
    /// let owned: Vec<String> = vec![saxpy.to_string(), "not a kernel".to_string()];
    /// let results = planner.predict_batch(&owned);
    /// assert!(results[0].is_ok());
    /// assert!(results[1].is_err(), "errors stay in their slot");
    /// assert_eq!(
    ///     results[0].as_ref().unwrap(),
    ///     planner.predict_batch(&[saxpy])[0].as_ref().unwrap(),
    /// );
    /// # Ok::<(), gpufreq_core::Error>(())
    /// ```
    pub fn predict_batch<S: AsRef<str> + Sync>(
        &self,
        sources: &[S],
    ) -> Vec<Result<ParetoPrediction>> {
        self.engine
            .map(sources, |src| self.predict_source(src.as_ref()))
    }

    /// Evaluate the planner on the paper's twelve test benchmarks
    /// (ground-truth sweep + prediction at the same settings), in
    /// Table 2 order, workloads fanned out over this planner's
    /// [`Engine`].
    pub fn evaluate(&self) -> Result<Vec<BenchmarkEvaluation>> {
        Ok(evaluate_all_with(
            &self.engine,
            &self.sim,
            &self.artifact.model,
            &gpufreq_workloads::all_workloads(),
        ))
    }

    /// Evaluate on a single named workload.
    ///
    /// # Errors
    /// [`Error::UnknownWorkload`] when `name` is not one of the twelve.
    pub fn evaluate_workload(&self, name: &str) -> Result<BenchmarkEvaluation> {
        let workload = gpufreq_workloads::workload(name).ok_or_else(|| Error::UnknownWorkload {
            name: name.to_string(),
        })?;
        Ok(crate::evaluate::evaluate_workload(
            &self.sim,
            &self.artifact.model,
            &workload,
        ))
    }
}

/// Parse and statically analyze an OpenCL-C kernel source, returning
/// the static features and execution profile of its first kernel.
///
/// `path` is only used to prefix diagnostics; pass `None` for
/// in-memory sources.
pub fn analyze_source(source: &str, path: Option<&str>) -> Result<(StaticFeatures, KernelProfile)> {
    let owned_path = || path.map(|p| p.to_string());
    let program = parse(source).map_err(|source| Error::KernelParse {
        path: owned_path(),
        source,
    })?;
    let kernel = program
        .first_kernel()
        .ok_or(Error::NoKernelFound { path: owned_path() })?;
    let config = AnalysisConfig::default();
    // One analysis serves both views: the features are the normalized
    // mix of the same counts the profile records absolutely.
    let analysis =
        analyze_kernel_with(kernel, &config).map_err(|source| Error::KernelAnalysis {
            path: owned_path(),
            source,
        })?;
    let profile = KernelProfile::from_analysis(&kernel.name, &analysis, LaunchConfig::default());
    Ok((StaticFeatures::from_analysis(&analysis), profile))
}

/// Read a kernel source file and [`analyze_source`] it.
pub fn analyze_kernel_file(path: impl AsRef<Path>) -> Result<(StaticFeatures, KernelProfile)> {
    let path = path.as_ref();
    let display = path.display().to_string();
    let source = std::fs::read_to_string(path).map_err(|source| Error::Io {
        path: display.clone(),
        source,
    })?;
    analyze_source(&source, Some(&display))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_ml::SvrParams;

    fn fast_planner(device: Device) -> TrainedPlanner {
        let config = ModelConfig {
            speedup: SvrParams {
                c: 10.0,
                ..SvrParams::paper_speedup()
            },
            energy: SvrParams {
                c: 10.0,
                ..SvrParams::paper_energy()
            },
        };
        Planner::builder()
            .device(device)
            .corpus(Corpus::Fast)
            .settings(10)
            .model_config(config)
            .train()
            .unwrap()
    }

    #[test]
    fn builder_trains_and_predicts() {
        let planner = fast_planner(Device::TitanX);
        assert_eq!(planner.device(), Device::TitanX);
        let features = gpufreq_workloads::workload("knn")
            .unwrap()
            .static_features();
        let prediction = planner.predict(&features).unwrap();
        assert!(!prediction.pareto_set.is_empty());
    }

    #[test]
    fn zero_settings_is_an_empty_corpus_error() {
        let err = Planner::builder()
            .corpus(Corpus::Fast)
            .settings(0)
            .train()
            .unwrap_err();
        assert!(matches!(err, Error::EmptyCorpus), "{err}");
    }

    #[test]
    fn non_finite_features_are_rejected() {
        let planner = fast_planner(Device::TitanX);
        let mut values = *gpufreq_workloads::workload("knn")
            .unwrap()
            .static_features()
            .values();
        values[0] = f64::NAN;
        let features = StaticFeatures::from_values(values);
        let err = planner.predict(&features).unwrap_err();
        assert!(matches!(err, Error::NonFiniteFeatures), "{err}");
    }

    #[test]
    fn predict_source_rejects_bad_kernels() {
        let planner = fast_planner(Device::TitanX);
        let err = planner
            .predict_source("int main() { return 0; }")
            .unwrap_err();
        assert!(
            matches!(err, Error::KernelParse { .. } | Error::NoKernelFound { .. }),
            "{err}"
        );
        let ok = planner.predict_source(
            "__kernel void scale(__global float* x) {
                 uint i = get_global_id(0);
                 x[i] = x[i] * 2.0f;
             }",
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let planner = fast_planner(Device::TeslaP100);
        let dir = std::env::temp_dir().join("gpufreq-planner-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p100.json");
        planner.save(&path).unwrap();
        let loaded = TrainedPlanner::load(&path).unwrap();
        assert_eq!(loaded.device(), Device::TeslaP100);
        assert_eq!(loaded.artifact(), planner.artifact());
        let features = gpufreq_workloads::workload("mt").unwrap().static_features();
        assert_eq!(
            planner.predict(&features).unwrap(),
            loaded.predict(&features).unwrap()
        );
        // Loading for the wrong device is a typed mismatch.
        let err = TrainedPlanner::load_for_device(&path, Device::TitanX).unwrap_err();
        assert!(matches!(err, Error::DeviceMismatch { .. }), "{err}");
    }

    #[test]
    fn predict_batch_matches_predict_source_including_errors() {
        let planner = fast_planner(Device::TitanX).with_jobs(Some(4));
        let good = "__kernel void scale(__global float* x) {
             uint i = get_global_id(0);
             x[i] = x[i] * 2.0f;
         }";
        let bad = "int main() { return 0; }";
        let results = planner.predict_batch(&[good, bad, good]);
        assert_eq!(results.len(), 3);
        assert_eq!(
            results[0].as_ref().unwrap(),
            &planner.predict_source(good).unwrap()
        );
        assert!(results[1].is_err());
        assert_eq!(results[2].as_ref().unwrap(), results[0].as_ref().unwrap());
        // One distinct valid source is stored (racing duplicates
        // coalesce onto one entry; the error is never cached), and the
        // serial predict_source above was necessarily a hit.
        assert_eq!(planner.cache().len(), 1);
        assert!(planner.cache().hits() >= 1);
    }

    #[test]
    fn train_all_devices_covers_the_registry_in_order() {
        let planners = Planner::builder()
            .corpus(Corpus::Fast)
            .settings(6)
            .model_config(ModelConfig::relaxed())
            .jobs(Some(3))
            .train_all_devices()
            .unwrap();
        let devices: Vec<Device> = planners.iter().map(|p| p.device()).collect();
        assert_eq!(devices, Device::all().to_vec());
        // All three share one analysis cache.
        assert!(Arc::ptr_eq(planners[0].cache(), planners[2].cache()));
        for p in &planners {
            assert!(p.model().trained_on() > 0);
        }
    }

    #[test]
    fn unknown_workload_is_a_typed_error() {
        let planner = fast_planner(Device::TitanX);
        let err = planner.evaluate_workload("nbody").unwrap_err();
        assert!(matches!(err, Error::UnknownWorkload { .. }), "{err}");
    }

    #[test]
    fn analyze_kernel_file_reports_io_errors() {
        let err = analyze_kernel_file("/does/not/exist.cl").unwrap_err();
        assert!(matches!(err, Error::Io { .. }), "{err}");
    }
}
