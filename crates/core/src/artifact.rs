//! Versioned, device-tagged model persistence.
//!
//! A trained [`FreqScalingModel`] is only meaningful together with the
//! device whose clock domains it was trained on — a Titan X model
//! applied to a P100's single 715 MHz domain silently predicts through
//! the wrong heads. [`ModelArtifact`] therefore wraps the model in an
//! envelope recording the format version, the training device, the
//! trained memory domains and the corpus size, and loading checks all
//! of it: a bare legacy model, a future `format_version` or a
//! different device each produce a distinct [`Error`] instead of a
//! wrong answer.

use crate::error::{Error, Result, MODEL_FORMAT_VERSION};
use crate::model::FreqScalingModel;
use gpufreq_sim::Device;
use serde::{Deserialize, Serialize, Value};
use std::path::Path;

/// A persisted model: the trained [`FreqScalingModel`] plus the
/// metadata needed to load it safely later.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// Artifact format version ([`MODEL_FORMAT_VERSION`] when written
    /// by this build).
    pub format_version: u32,
    /// The device the model was trained on.
    pub device: Device,
    /// Memory domains (MHz, ascending) the model has heads for.
    pub trained_domains: Vec<u32>,
    /// Number of training samples the model saw.
    pub num_samples: usize,
    /// The trained model itself.
    pub model: FreqScalingModel,
}

impl ModelArtifact {
    /// Wrap a freshly trained model in a current-version envelope.
    pub fn new(device: Device, model: FreqScalingModel) -> ModelArtifact {
        ModelArtifact {
            format_version: MODEL_FORMAT_VERSION,
            device,
            trained_domains: model.trained_domains(),
            num_samples: model.trained_on(),
            model,
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("artifact serializes")
    }

    /// Deserialize from JSON with full envelope validation.
    ///
    /// # Errors
    /// * [`Error::LegacyArtifact`] for pre-versioning bare-model JSON;
    /// * [`Error::UnsupportedFormatVersion`] for a `format_version`
    ///   this build does not read;
    /// * [`Error::MalformedArtifact`] for anything else that fails to
    ///   decode.
    pub fn from_json(json: &str) -> Result<ModelArtifact> {
        let value: Value = serde_json::from_str(json).map_err(|e| Error::MalformedArtifact {
            message: e.to_string(),
        })?;
        let Value::Object(entries) = &value else {
            return Err(Error::MalformedArtifact {
                message: "top level is not a JSON object".into(),
            });
        };
        let field = |name: &str| entries.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let Some(version) = field("format_version") else {
            // A bare pre-versioning FreqScalingModel serializes with
            // `domains` and `scaler` at the top level — only that
            // shape earns the "retrain" hint; any other object is
            // simply not a model artifact.
            if field("domains").is_some() && field("scaler").is_some() {
                return Err(Error::LegacyArtifact);
            }
            return Err(Error::MalformedArtifact {
                message: "missing field `format_version`".into(),
            });
        };
        let version = u32::deserialize(version).map_err(|e| Error::MalformedArtifact {
            message: format!("format_version: {e}"),
        })?;
        if version != MODEL_FORMAT_VERSION {
            return Err(Error::UnsupportedFormatVersion {
                found: version,
                supported: MODEL_FORMAT_VERSION,
            });
        }
        let artifact =
            ModelArtifact::deserialize(&value).map_err(|e| Error::MalformedArtifact {
                message: e.to_string(),
            })?;
        // A structurally valid artifact whose model has no domain heads
        // would panic deep inside prediction; reject it here instead.
        if artifact.model.trained_domains().is_empty() {
            return Err(Error::MalformedArtifact {
                message: "model has no trained memory domains".into(),
            });
        }
        // The envelope metadata is derived from the model at save time;
        // a hand-edited file where they disagree would make tooling
        // that reads the envelope report wrong values.
        if artifact.trained_domains != artifact.model.trained_domains()
            || artifact.num_samples != artifact.model.trained_on()
        {
            return Err(Error::MalformedArtifact {
                message: "envelope metadata disagrees with the embedded model".into(),
            });
        }
        Ok(artifact)
    }

    /// Write the artifact to `path` as JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json()).map_err(|source| Error::Io {
            path: path.display().to_string(),
            source,
        })
    }

    /// Read and validate an artifact from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<ModelArtifact> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path).map_err(|source| Error::Io {
            path: path.display().to_string(),
            source,
        })?;
        ModelArtifact::from_json(&json)
    }

    /// Check that the artifact was trained on `device`.
    ///
    /// # Errors
    /// [`Error::DeviceMismatch`] naming both devices otherwise.
    pub fn expect_device(&self, device: Device) -> Result<()> {
        if self.device == device {
            Ok(())
        } else {
            Err(Error::DeviceMismatch {
                artifact: self.device,
                requested: device,
            })
        }
    }
}
