//! `gpufreq-core` — the primary contribution of *Predictable GPUs
//! Frequency Scaling for Energy and Performance* (Fan, Cosenza,
//! Juurlink — ICPP 2019): a static, machine-learning model that
//! predicts the Pareto-optimal `(memory, core)` frequency
//! configurations of a GPU kernel *without executing it*.
//!
//! * [`planner`] — the [`Planner`] façade: typed, fallible
//!   train → persist → predict → evaluate in one builder-style entry
//!   point;
//! * [`error`] — the workspace [`Error`] type every fallible operation
//!   returns;
//! * [`artifact`] — [`ModelArtifact`], the versioned, device-tagged
//!   persistence envelope;
//! * [`engine`] — the parallel execution [`Engine`] (deterministic
//!   index-ordered fan-out of training, evaluation, cross-validation
//!   and batch prediction) and the shared [`ProfileCache`];
//! * [`pipeline`] — the training phase (Fig. 2): execute the 106
//!   synthetic micro-benchmarks at 40 sampled frequency settings and
//!   assemble `(features ⊕ frequencies) → (speedup, normalized energy)`
//!   datasets;
//! * [`model`] — the two-headed [`FreqScalingModel`]: linear-kernel
//!   ε-SVR for speedup, RBF-kernel ε-SVR for normalized energy
//!   (`C = 1000`, `ε = 0.1`, `γ = 0.1`), with serde persistence;
//! * [`predict`] — the prediction phase (Fig. 3): score every supported
//!   configuration of a *new* kernel, reduce with Algorithm 1, and
//!   apply the paper's mem-L heuristic (§4.5);
//! * [`evaluate`] — ground-truth sweeps, per-memory-domain error
//!   analysis (Figs. 6–7), Pareto comparison (Fig. 8) and Table 2;
//! * [`report`] — ASCII/CSV/JSON rendering shared by the experiment
//!   binaries.
//!
//! # End-to-end example
//!
//! ```no_run
//! use gpufreq_core::{Corpus, Planner};
//! use gpufreq_sim::Device;
//!
//! # fn main() -> Result<(), gpufreq_core::Error> {
//! // Training phase (Fig. 2): 106 micro-benchmarks x 40 settings.
//! let planner = Planner::builder()
//!     .device(Device::TitanX)
//!     .corpus(Corpus::Full)
//!     .settings(40)
//!     .train()?;
//!
//! // Prediction phase (Fig. 3): a new kernel, never executed.
//! let kernel = gpufreq_workloads::workload("knn")
//!     .expect("knn is one of the twelve benchmarks");
//! let prediction = planner.predict(&kernel.static_features())?;
//! for point in &prediction.pareto_set {
//!     println!("{}: predicted speedup {:.2}, energy {:.2}",
//!              point.config, point.objectives.speedup, point.objectives.energy);
//! }
//!
//! // Persist for driver-level reuse; `load` re-checks version + device.
//! planner.save("model.json")?;
//! # Ok(())
//! # }
//! ```
//!
//! The pre-redesign free functions ([`build_training_data`],
//! [`FreqScalingModel::train`], [`predict_pareto`]) remain re-exported
//! for existing callers; see the README's MIGRATION notes.

#![deny(missing_docs)]

pub mod active;
pub mod artifact;
pub mod crossval;
pub mod engine;
pub mod error;
pub mod evaluate;
pub mod model;
pub mod pipeline;
pub mod planner;
pub mod predict;
pub mod report;

pub use active::{refine_pareto, RefinedPoint, RefinedPrediction};
pub use artifact::ModelArtifact;
pub use crossval::{
    leave_one_pattern_out, leave_one_pattern_out_with, CrossValidation, FoldResult,
};
pub use engine::{Engine, ProfileCache};
pub use error::{Error, Result, MODEL_FORMAT_VERSION};
pub use evaluate::{
    error_analysis, evaluate_all, evaluate_all_with, evaluate_workload, evaluate_workload_scored,
    table2, BenchmarkErrors, BenchmarkEvaluation, DomainErrorAnalysis, Objective, Table2Row,
    EVAL_SETTINGS,
};
pub use model::{FreqScalingModel, ModelConfig, ModelScorer};
pub use pipeline::{build_training_data, build_training_data_with, TrainingData};
pub use planner::{
    analyze_kernel_file, analyze_source, Corpus, Planner, PlannerBuilder, TrainedPlanner,
};
pub use predict::{
    predict_pareto, predict_pareto_at, predict_pareto_scored, ParetoPrediction, PredictPlan,
    PredictedPoint, MEM_L_MHZ,
};
pub use report::{
    ascii_table, csv_field, markdown_escape, markdown_table, objectives_csv, render_error_panel,
    render_table2, series_csv, table2_csv,
};
