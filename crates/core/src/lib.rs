//! `gpufreq-core` — the primary contribution of *Predictable GPUs
//! Frequency Scaling for Energy and Performance* (Fan, Cosenza,
//! Juurlink — ICPP 2019): a static, machine-learning model that
//! predicts the Pareto-optimal `(memory, core)` frequency
//! configurations of a GPU kernel *without executing it*.
//!
//! * [`pipeline`] — the training phase (Fig. 2): execute the 106
//!   synthetic micro-benchmarks at 40 sampled frequency settings and
//!   assemble `(features ⊕ frequencies) → (speedup, normalized energy)`
//!   datasets;
//! * [`model`] — the two-headed [`FreqScalingModel`]: linear-kernel
//!   ε-SVR for speedup, RBF-kernel ε-SVR for normalized energy
//!   (`C = 1000`, `ε = 0.1`, `γ = 0.1`), with serde persistence;
//! * [`predict`] — the prediction phase (Fig. 3): score every supported
//!   configuration of a *new* kernel, reduce with Algorithm 1, and
//!   apply the paper's mem-L heuristic (§4.5);
//! * [`evaluate`] — ground-truth sweeps, per-memory-domain error
//!   analysis (Figs. 6–7), Pareto comparison (Fig. 8) and Table 2;
//! * [`report`] — ASCII/CSV/JSON rendering shared by the experiment
//!   binaries.
//!
//! # End-to-end example
//!
//! ```no_run
//! use gpufreq_core::{build_training_data, FreqScalingModel, ModelConfig, predict_pareto};
//! use gpufreq_sim::GpuSimulator;
//!
//! // Training phase (Fig. 2): 106 micro-benchmarks x 40 settings.
//! let sim = GpuSimulator::titan_x();
//! let benches = gpufreq_synth::generate_all();
//! let data = build_training_data(&sim, &benches, 40);
//! let model = FreqScalingModel::train(&data, &ModelConfig::default());
//!
//! // Prediction phase (Fig. 3): a new kernel, never executed.
//! let kernel = gpufreq_workloads::workload("knn").unwrap();
//! let prediction = predict_pareto(&model, &kernel.static_features(), &sim.spec().clocks);
//! for point in &prediction.pareto_set {
//!     println!("{}: predicted speedup {:.2}, energy {:.2}",
//!              point.config, point.objectives.speedup, point.objectives.energy);
//! }
//! ```

#![warn(missing_docs)]

pub mod active;
pub mod crossval;
pub mod evaluate;
pub mod model;
pub mod pipeline;
pub mod predict;
pub mod report;

pub use active::{refine_pareto, RefinedPoint, RefinedPrediction};
pub use crossval::{leave_one_pattern_out, CrossValidation, FoldResult};
pub use evaluate::{
    error_analysis, evaluate_all, evaluate_workload, table2, BenchmarkErrors, BenchmarkEvaluation,
    DomainErrorAnalysis, Objective, Table2Row, EVAL_SETTINGS,
};
pub use model::{FreqScalingModel, ModelConfig};
pub use pipeline::{build_training_data, TrainingData};
pub use predict::{predict_pareto, predict_pareto_at, ParetoPrediction, PredictedPoint, MEM_L_MHZ};
pub use report::{ascii_table, objectives_csv, render_error_panel, render_table2, series_csv};
