//! The training phase (§3.1, Fig. 2).
//!
//! For every micro-benchmark: extract its static code features (step 2),
//! execute it on the device at the sampled frequency configurations
//! (step 3), and store `(features ⊕ scaled frequencies) → (speedup,
//! normalized energy)` rows in the two training datasets (steps 4–6).
//! The paper samples 40 of the 177 settings per benchmark, giving
//! 106 × 40 = 4240 training samples.

use crate::engine::Engine;
use gpufreq_kernel::{FeatureVector, FreqConfig};
use gpufreq_ml::Dataset;
use gpufreq_sim::GpuSimulator;
use gpufreq_synth::MicroBenchmark;
use serde::{Deserialize, Serialize};

/// The assembled training data: one dataset per objective, sharing the
/// same feature rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingData {
    /// Rows → measured speedup over the default configuration.
    pub speedup: Dataset,
    /// Rows → measured normalized energy.
    pub energy: Dataset,
    /// The frequency configurations each benchmark was executed at.
    pub configs: Vec<FreqConfig>,
    /// The configuration behind each row (parallel to the datasets),
    /// used to partition training per memory domain.
    pub row_configs: Vec<FreqConfig>,
    /// Number of benchmarks that contributed samples.
    pub num_benchmarks: usize,
}

impl TrainingData {
    /// Total number of training samples.
    pub fn len(&self) -> usize {
        self.speedup.len()
    }

    /// Whether no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.speedup.is_empty()
    }
}

/// Execute `benchmarks` on `sim` at `settings_per_benchmark` sampled
/// frequency settings each and assemble the training datasets.
///
/// The sampling is the deterministic stratified scheme of
/// `ClockTable::sample_configs`, so the same call always produces the
/// same corpus.
pub fn build_training_data(
    sim: &GpuSimulator,
    benchmarks: &[MicroBenchmark],
    settings_per_benchmark: usize,
) -> TrainingData {
    build_training_data_with(&Engine::default(), sim, benchmarks, settings_per_benchmark)
}

/// [`build_training_data`] fanned out over `engine`: every benchmark's
/// profile extraction and frequency sweep runs as one work item, and
/// the per-benchmark sample blocks are merged back in corpus order, so
/// the assembled datasets are bit-identical for every worker count
/// (pinned by `tests/determinism.rs`).
///
/// When the engine fans out, the per-benchmark sweeps inside the
/// simulator are pinned to a single thread ([`Engine::inner`]) —
/// benchmark-level parallelism already saturates the cores and nested
/// sweep threads would only oversubscribe.
pub fn build_training_data_with(
    engine: &Engine,
    sim: &GpuSimulator,
    benchmarks: &[MicroBenchmark],
    settings_per_benchmark: usize,
) -> TrainingData {
    let configs = sim.spec().clocks.sample_configs(settings_per_benchmark);
    let inner_sim = sim.clone().with_jobs(engine.inner(benchmarks.len()).jobs());
    // One work item per benchmark: (rows, speedups, energies, configs).
    type BenchBlock = (Vec<Vec<f64>>, Vec<f64>, Vec<f64>, Vec<FreqConfig>);
    let blocks: Vec<BenchBlock> = engine.map(benchmarks, |bench| {
        let profile = bench.profile();
        let features = profile.static_features();
        let characterization = inner_sim.characterize_at(&profile, &configs);
        let mut block: BenchBlock = Default::default();
        for point in &characterization.points {
            block.0.push(
                FeatureVector::new(&features, point.config())
                    .as_slice()
                    .to_vec(),
            );
            block.1.push(point.speedup);
            block.2.push(point.norm_energy);
            block.3.push(point.config());
        }
        block
    });
    let mut speedup = Dataset::new();
    let mut energy = Dataset::new();
    let mut row_configs = Vec::new();
    for (rows, speedups, energies, cfgs) in blocks {
        for ((row, s), e) in rows.into_iter().zip(speedups).zip(energies) {
            speedup.push(row.clone(), s);
            energy.push(row, e);
        }
        row_configs.extend(cfgs);
    }
    TrainingData {
        speedup,
        energy,
        configs,
        row_configs,
        num_benchmarks: benchmarks.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_kernel::NUM_FEATURES;

    fn small_corpus() -> Vec<MicroBenchmark> {
        gpufreq_synth::generate_all()
            .into_iter()
            .step_by(13)
            .collect()
    }

    #[test]
    fn dataset_shape_matches_corpus() {
        let sim = GpuSimulator::titan_x();
        let benches = small_corpus();
        let data = build_training_data(&sim, &benches, 8);
        assert_eq!(data.len(), benches.len() * 8);
        assert_eq!(data.speedup.dims(), NUM_FEATURES);
        assert_eq!(data.energy.dims(), NUM_FEATURES);
        assert_eq!(data.configs.len(), 8);
        assert_eq!(data.num_benchmarks, benches.len());
    }

    #[test]
    fn targets_are_positive_and_centered_on_baseline() {
        let sim = GpuSimulator::titan_x();
        let data = build_training_data(&sim, &small_corpus(), 8);
        for &s in data.speedup.ys() {
            assert!(s > 0.0 && s < 3.0, "speedup {s}");
        }
        for &e in data.energy.ys() {
            // Deep down-clocked points can cost several times the
            // baseline energy (the parabola's left arm).
            assert!(e > 0.0 && e < 8.0, "normalized energy {e}");
        }
    }

    #[test]
    fn deterministic() {
        let sim = GpuSimulator::titan_x();
        let benches = small_corpus();
        let a = build_training_data(&sim, &benches, 6);
        let b = build_training_data(&sim, &benches, 6);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_assembly_matches_serial() {
        let sim = GpuSimulator::titan_x();
        let benches = small_corpus();
        let serial = build_training_data_with(&Engine::serial(), &sim, &benches, 6);
        for jobs in [2, 4, 16] {
            let parallel = build_training_data_with(&Engine::new(Some(jobs)), &sim, &benches, 6);
            assert_eq!(parallel, serial, "jobs = {jobs}");
        }
        assert_eq!(build_training_data(&sim, &benches, 6), serial);
    }

    #[test]
    fn full_paper_corpus_size() {
        // 106 benchmarks x 40 settings = 4240 samples (§3.3). Verified
        // on a thin sweep (2 settings) to keep the test fast, plus the
        // arithmetic identity for the full corpus.
        let sim = GpuSimulator::titan_x();
        let benches = gpufreq_synth::generate_all();
        let data = build_training_data(&sim, &benches, 2);
        assert_eq!(data.len(), 106 * 2);
        assert_eq!(
            gpufreq_synth::NUM_MICROBENCHMARKS * gpufreq_synth::TRAINING_SETTINGS,
            4240
        );
    }
}
