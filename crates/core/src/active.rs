//! Active refinement of a predicted Pareto set (extension).
//!
//! The paper's model is purely static; its conclusion points at
//! iterative multi-objective approaches (ε-PAL [Zuluaga et al.]) as
//! future work. This module implements the natural hybrid: start from
//! the static prediction, spend a small *measurement budget* on the
//! most promising configurations, and use the observed residuals to
//! bias-correct the remaining (unmeasured) predictions per memory
//! domain. Measured points enter the refined front with their exact
//! objectives, so the front can only improve as budget grows — at
//! budget = |candidates| the result is the true measured front.

use crate::model::FreqScalingModel;
use crate::predict::{predict_pareto_at, PredictedPoint, MEM_L_MHZ};
use gpufreq_kernel::{FreqConfig, KernelProfile, StaticFeatures};
use gpufreq_pareto::{pareto_set_simple, Objectives};
use gpufreq_sim::GpuSimulator;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One point of the refined front: measured exactly or bias-corrected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefinedPoint {
    /// The frequency configuration.
    pub config: FreqConfig,
    /// Objectives — exact if `measured`, corrected prediction otherwise.
    pub objectives: Objectives,
    /// Whether this point was actually executed.
    pub measured: bool,
}

/// Result of an active-refinement session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefinedPrediction {
    /// The refined Pareto set.
    pub pareto_set: Vec<RefinedPoint>,
    /// Number of kernel executions spent.
    pub measurements_used: usize,
    /// Simulated wall-clock cost of those measurements in seconds.
    pub measurement_cost_s: f64,
}

/// Refine the static prediction for `profile` by measuring up to
/// `budget` configurations on `sim`.
///
/// The budget is spent on the statically-predicted Pareto set first
/// (those are the configurations a user would apply), then on the
/// remaining candidates in predicted-speedup order. Residuals from the
/// measured points produce a per-memory-domain additive correction for
/// everything not measured.
pub fn refine_pareto(
    sim: &GpuSimulator,
    profile: &KernelProfile,
    model: &FreqScalingModel,
    features: &StaticFeatures,
    candidates: &[FreqConfig],
    budget: usize,
) -> RefinedPrediction {
    let baseline = sim.run_default(profile);
    let prediction = predict_pareto_at(model, features, &sim.spec().clocks, candidates);

    // Measurement order: predicted front first (highest value), then
    // the rest by predicted speedup, descending.
    let mut order: Vec<PredictedPoint> = prediction.pareto_set.clone();
    let mut rest: Vec<PredictedPoint> = prediction
        .all_points
        .iter()
        .filter(|p| !order.iter().any(|q| q.config == p.config))
        .copied()
        .collect();
    rest.sort_by(|a, b| b.objectives.speedup.total_cmp(&a.objectives.speedup));
    order.extend(rest);

    let mut measured: HashMap<(u32, u32), Objectives> = HashMap::new();
    let mut residuals: HashMap<u32, (f64, f64, usize)> = HashMap::new();
    let mut cost_s = baseline.sim_wall_s;
    for point in order.iter().take(budget) {
        let Ok(m) = sim.run(profile, point.config) else {
            continue;
        };
        let actual = Objectives::new(baseline.time_ms / m.time_ms, m.energy_j / baseline.energy_j);
        cost_s += m.sim_wall_s;
        measured.insert((point.config.mem_mhz, point.config.core_mhz), actual);
        let entry = residuals
            .entry(point.config.mem_mhz)
            .or_insert((0.0, 0.0, 0));
        entry.0 += actual.speedup - point.objectives.speedup;
        entry.1 += actual.energy - point.objectives.energy;
        entry.2 += 1;
    }

    // Assemble the refined candidate set: exact where measured,
    // bias-corrected otherwise.
    let refined: Vec<RefinedPoint> = prediction
        .all_points
        .iter()
        .map(|p| {
            let key = (p.config.mem_mhz, p.config.core_mhz);
            match measured.get(&key) {
                Some(actual) => RefinedPoint {
                    config: p.config,
                    objectives: *actual,
                    measured: true,
                },
                None => {
                    let (ds, de) = residuals
                        .get(&p.config.mem_mhz)
                        .map(|(s, e, n)| (s / *n as f64, e / *n as f64))
                        .unwrap_or((0.0, 0.0));
                    RefinedPoint {
                        config: p.config,
                        objectives: Objectives::new(
                            p.objectives.speedup + ds,
                            p.objectives.energy + de,
                        ),
                        measured: false,
                    }
                }
            }
        })
        .collect();
    let objectives: Vec<Objectives> = refined.iter().map(|p| p.objectives).collect();
    let mut pareto_set: Vec<RefinedPoint> = pareto_set_simple(&objectives)
        .into_iter()
        .map(|i| refined[i])
        .collect();
    // Keep the paper's mem-L heuristic: the last mem-L configuration,
    // measured if budget remains.
    if let Some(mem_l_last) = candidates
        .iter()
        .filter(|c| c.mem_mhz == MEM_L_MHZ)
        .max_by_key(|c| c.core_mhz)
    {
        let objectives = measured
            .get(&(mem_l_last.mem_mhz, mem_l_last.core_mhz))
            .copied()
            .unwrap_or_else(|| model.predict_objectives(features, *mem_l_last));
        pareto_set.push(RefinedPoint {
            config: *mem_l_last,
            objectives,
            measured: false,
        });
    }
    RefinedPrediction {
        pareto_set,
        measurements_used: measured.len(),
        measurement_cost_s: cost_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::EVAL_SETTINGS;
    use crate::model::{FreqScalingModel, ModelConfig};
    use crate::pipeline::build_training_data;
    use gpufreq_ml::SvrParams;
    use gpufreq_pareto::paper_coverage_difference;
    use std::sync::OnceLock;

    fn setup() -> &'static (GpuSimulator, FreqScalingModel) {
        static SETUP: OnceLock<(GpuSimulator, FreqScalingModel)> = OnceLock::new();
        SETUP.get_or_init(|| {
            let sim = GpuSimulator::titan_x();
            let benches: Vec<_> = gpufreq_synth::generate_all()
                .into_iter()
                .step_by(4)
                .collect();
            let data = build_training_data(&sim, &benches, 24);
            let config = ModelConfig {
                speedup: SvrParams {
                    c: 100.0,
                    ..SvrParams::paper_speedup()
                },
                energy: SvrParams {
                    c: 100.0,
                    ..SvrParams::paper_energy()
                },
            };
            (sim.clone(), FreqScalingModel::train(&data, &config))
        })
    }

    fn coverage_of(
        sim: &GpuSimulator,
        profile: &KernelProfile,
        candidates: &[FreqConfig],
        front: &[Objectives],
    ) -> f64 {
        let truth = sim.characterize_at(profile, candidates);
        let measured: Vec<Objectives> = truth
            .points
            .iter()
            .map(|p| Objectives::new(p.speedup, p.norm_energy))
            .collect();
        let real_front = gpufreq_pareto::pareto_front_simple(&measured);
        paper_coverage_difference(&real_front, front)
    }

    #[test]
    fn budget_is_respected() {
        let (sim, model) = setup();
        let w = gpufreq_workloads::workload("kmeans").unwrap();
        let profile = w.profile();
        let candidates = sim.spec().clocks.sample_configs(EVAL_SETTINGS);
        for budget in [0usize, 3, 8] {
            let r = refine_pareto(
                sim,
                &profile,
                model,
                &w.static_features(),
                &candidates,
                budget,
            );
            assert!(r.measurements_used <= budget);
        }
    }

    #[test]
    fn refinement_does_not_hurt_and_often_helps() {
        let (sim, model) = setup();
        let candidates = sim.spec().clocks.sample_configs(EVAL_SETTINGS);
        let mut improved = 0;
        let mut worsened = 0;
        for name in ["knn", "mt", "convolution", "blackscholes"] {
            let w = gpufreq_workloads::workload(name).unwrap();
            let profile = w.profile();
            let features = w.static_features();
            let static_r = refine_pareto(sim, &profile, model, &features, &candidates, 0);
            let refined_r = refine_pareto(sim, &profile, model, &features, &candidates, 12);
            // Evaluate both fronts at their *measured* objectives.
            let truth = sim.characterize_at(&profile, &candidates);
            let measured_of = |set: &[RefinedPoint]| -> Vec<Objectives> {
                set.iter()
                    .filter_map(|p| {
                        truth
                            .points
                            .iter()
                            .find(|m| m.config() == p.config)
                            .map(|m| Objectives::new(m.speedup, m.norm_energy))
                    })
                    .collect()
            };
            let d_static = coverage_of(
                sim,
                &profile,
                &candidates,
                &measured_of(&static_r.pareto_set),
            );
            let d_refined = coverage_of(
                sim,
                &profile,
                &candidates,
                &measured_of(&refined_r.pareto_set),
            );
            if d_refined < d_static - 1e-9 {
                improved += 1;
            } else if d_refined > d_static + 1e-6 {
                worsened += 1;
            }
        }
        assert_eq!(worsened, 0, "refinement must not degrade the front");
        // At least some benchmarks benefit from 12 measurements.
        assert!(improved >= 1, "refinement never helped");
    }

    #[test]
    fn full_budget_recovers_true_front_points() {
        let (sim, model) = setup();
        let w = gpufreq_workloads::workload("mt").unwrap();
        let profile = w.profile();
        let candidates = sim.spec().clocks.sample_configs(EVAL_SETTINGS);
        let r = refine_pareto(
            sim,
            &profile,
            model,
            &w.static_features(),
            &candidates,
            candidates.len(),
        );
        // Every non-heuristic refined point is backed by a measurement.
        let measured_points = r.pareto_set.iter().filter(|p| p.measured).count();
        assert!(measured_points >= r.pareto_set.len() - 1);
        assert!(r.measurement_cost_s > 0.0);
    }
}
