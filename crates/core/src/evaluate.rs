//! Evaluation machinery (§4): ground-truth sweeps, per-memory-domain
//! error analysis (Figs. 6–7), Pareto-front comparison (Fig. 8) and the
//! Table 2 metrics.

use crate::engine::Engine;
use crate::model::{FreqScalingModel, ModelScorer};
use crate::predict::{ParetoPrediction, MEM_L_MHZ};
use gpufreq_kernel::{FreqConfig, StaticFeatures};
use gpufreq_ml::{rmse_percent, BoxStats};
use gpufreq_pareto::{
    extreme_point_distances, paper_coverage_difference, pareto_front_simple, ExtremeDistance,
    Objectives,
};
use gpufreq_sim::{Characterization, GpuSimulator};
use gpufreq_workloads::Workload;
use serde::{Deserialize, Serialize};

/// Which objective an error analysis measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Speedup over the default configuration.
    Speedup,
    /// Normalized energy.
    Energy,
}

/// Complete evaluation artifacts for one test benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkEvaluation {
    /// Machine name (`"knn"`).
    pub name: String,
    /// Paper display name (`"k-NN"`).
    pub display_name: String,
    /// Static features the model saw.
    pub features: StaticFeatures,
    /// Measured sweep over every actual configuration.
    pub ground_truth: Characterization,
    /// Model predictions and predicted Pareto set.
    pub prediction: ParetoPrediction,
    /// The *measured* Pareto front over all configurations (including
    /// mem-L — the green points of Fig. 8).
    pub real_front: Vec<Objectives>,
    /// Measured objectives of the predicted-Pareto configurations (the
    /// red crosses of Fig. 8).
    pub predicted_measured: Vec<Objectives>,
    /// Binary hypervolume coverage difference `D(P*, P′)` (Table 2).
    pub coverage_d: f64,
    /// Distance between true and predicted max-speedup points.
    pub extreme_max_speedup: ExtremeDistance,
    /// Distance between true and predicted min-energy points.
    pub extreme_min_energy: ExtremeDistance,
}

impl BenchmarkEvaluation {
    /// Measured objectives at `config`, if it was swept.
    pub fn measured_at(&self, config: FreqConfig) -> Option<Objectives> {
        self.ground_truth
            .points
            .iter()
            .find(|p| p.config() == config)
            .map(|p| Objectives::new(p.speedup, p.norm_energy))
    }

    /// Whether the predicted set contains at least one configuration
    /// that (measured) strictly Pareto-dominates the default
    /// configuration. On hardware whose default sits off the front
    /// (Fig. 1c) this is common; on a device where the default is
    /// well-placed it can legitimately be empty — see
    /// [`BenchmarkEvaluation::offers_trade_off`] for the weaker,
    /// always-meaningful notion.
    pub fn improves_on_default(&self) -> bool {
        let default = Objectives::new(1.0, 1.0);
        self.predicted_measured
            .iter()
            .any(|p| p.dominates(&default))
    }

    /// The paper's headline phrased operationally: the predicted set
    /// "dominates the default configuration in either energy or
    /// performance" — some configuration is strictly better in one
    /// objective while giving up at most `tolerance` (relative) in the
    /// other. E.g. `offers_trade_off(0.05)` asks for ≥5% energy savings
    /// within 5% of default speed, or vice versa.
    pub fn offers_trade_off(&self, tolerance: f64) -> bool {
        self.predicted_measured.iter().any(|p| {
            (p.energy < 1.0 - tolerance && p.speedup >= 1.0 - tolerance)
                || (p.speedup > 1.0 + tolerance && p.energy <= 1.0 + tolerance)
        })
    }
}

/// Number of sampled settings the evaluation measures and predicts at —
/// the paper's ground truth "has been evaluated on a subset of sampled
/// configurations" (§4.5), the same 40-setting sample the training
/// phase uses.
pub const EVAL_SETTINGS: usize = 40;

/// Evaluate one workload end to end: sweep the ground truth at the
/// sampled settings, run the prediction phase at the same settings, and
/// score it.
pub fn evaluate_workload(
    sim: &GpuSimulator,
    model: &FreqScalingModel,
    workload: &Workload,
) -> BenchmarkEvaluation {
    evaluate_workload_scored(sim, &model.scorer(), workload)
}

/// [`evaluate_workload`] with a prebuilt [`ModelScorer`], so a batch of
/// evaluations against one model shares a single scoring plan — the
/// same batched code path the serve daemon predicts through.
pub fn evaluate_workload_scored(
    sim: &GpuSimulator,
    scorer: &ModelScorer,
    workload: &Workload,
) -> BenchmarkEvaluation {
    let profile = workload.profile();
    let features = profile.static_features();
    let mut candidates = sim.spec().clocks.sample_configs(EVAL_SETTINGS);
    // The baseline must be part of the measured set.
    let default = sim.spec().clocks.default;
    if !candidates.contains(&default) {
        candidates.push(default);
    }
    let ground_truth = sim.characterize_at(&profile, &candidates);
    let prediction =
        crate::predict::predict_pareto_scored(scorer, &features, &sim.spec().clocks, &candidates);

    // Measured objective space (Fig. 8 gray + green points).
    let measured: Vec<Objectives> = ground_truth
        .points
        .iter()
        .map(|p| Objectives::new(p.speedup, p.norm_energy))
        .collect();
    let real_front = pareto_front_simple(&measured);

    // The red crosses: predicted configurations at their measured values.
    let predicted_measured: Vec<Objectives> = prediction
        .pareto_set
        .iter()
        .filter_map(|p| {
            ground_truth
                .points
                .iter()
                .find(|m| m.config() == p.config)
                .map(|m| Objectives::new(m.speedup, m.norm_energy))
        })
        .collect();

    let coverage_d = paper_coverage_difference(&real_front, &predicted_measured);

    // Extreme-point analysis excludes mem-L on both sides (§4.5).
    let real_no_mem_l: Vec<Objectives> = ground_truth
        .points
        .iter()
        .filter(|p| p.config().mem_mhz > MEM_L_MHZ)
        .map(|p| Objectives::new(p.speedup, p.norm_energy))
        .collect();
    let real_front_no_mem_l = pareto_front_simple(&real_no_mem_l);
    let predicted_no_heuristic: Vec<Objectives> = prediction
        .pareto_set
        .iter()
        .filter(|p| !p.heuristic)
        .filter_map(|p| {
            ground_truth
                .points
                .iter()
                .find(|m| m.config() == p.config)
                .map(|m| Objectives::new(m.speedup, m.norm_energy))
        })
        .collect();
    let (extreme_max_speedup, extreme_min_energy) =
        extreme_point_distances(&real_front_no_mem_l, &predicted_no_heuristic)
            .unwrap_or((zero_distance(), zero_distance()));

    BenchmarkEvaluation {
        name: workload.name.to_string(),
        display_name: workload.display_name.to_string(),
        features,
        ground_truth,
        prediction,
        real_front,
        predicted_measured,
        coverage_d,
        extreme_max_speedup,
        extreme_min_energy,
    }
}

fn zero_distance() -> ExtremeDistance {
    ExtremeDistance {
        d_speedup: 0.0,
        d_energy: 0.0,
    }
}

/// Evaluate a set of workloads and sort by coverage difference, the
/// order Table 2 uses.
pub fn evaluate_all(
    sim: &GpuSimulator,
    model: &FreqScalingModel,
    workloads: &[Workload],
) -> Vec<BenchmarkEvaluation> {
    evaluate_all_with(&Engine::default(), sim, model, workloads)
}

/// [`evaluate_all`] with the per-workload evaluations (ground-truth
/// sweep + prediction + scoring) fanned out over `engine`.
///
/// Evaluations come back in workload order before the stable
/// coverage-difference sort, so ties break identically for every
/// worker count and the resulting Table 2 is bit-identical to a serial
/// run (pinned by `tests/determinism.rs`). The sweeps inside each
/// evaluation are pinned to one thread when the engine fans out
/// ([`Engine::inner`]).
pub fn evaluate_all_with(
    engine: &Engine,
    sim: &GpuSimulator,
    model: &FreqScalingModel,
    workloads: &[Workload],
) -> Vec<BenchmarkEvaluation> {
    let inner_sim = sim.clone().with_jobs(engine.inner(workloads.len()).jobs());
    // One scoring plan shared by every worker (read-only).
    let scorer = model.scorer();
    let mut evals: Vec<BenchmarkEvaluation> = engine.map(workloads, |w| {
        evaluate_workload_scored(&inner_sim, &scorer, w)
    });
    evals.sort_by(|a, b| a.coverage_d.total_cmp(&b.coverage_d));
    evals
}

/// Per-benchmark box-plot statistics of signed percentage errors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkErrors {
    /// Benchmark display name.
    pub name: String,
    /// Five-number summary of the signed percent errors.
    pub stats: BoxStats,
}

/// The error analysis for one memory domain: the content of one panel
/// of Fig. 6 / Fig. 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainErrorAnalysis {
    /// Memory clock of this domain in MHz.
    pub mem_mhz: u32,
    /// Paper label (`Mem_H`, ...).
    pub label: String,
    /// Per-benchmark error distributions.
    pub per_benchmark: Vec<BenchmarkErrors>,
    /// Pooled RMSE of the percentage errors across all benchmarks
    /// (the "RMSE = 6.68%" caption).
    pub rmse_percent: f64,
}

/// Per-memory-domain prediction-error analysis over all evaluated
/// benchmarks (Fig. 6 for speedup, Fig. 7 for normalized energy).
///
/// Every actual configuration of every domain is scored — including
/// mem-L, which the Pareto phase refuses to model; its large errors
/// here are exactly the paper's justification for the heuristic.
pub fn error_analysis(
    sim: &GpuSimulator,
    model: &FreqScalingModel,
    evals: &[BenchmarkEvaluation],
    objective: Objective,
) -> Vec<DomainErrorAnalysis> {
    let clocks = &sim.spec().clocks;
    // One scoring plan for the whole analysis (every domain × eval ×
    // config cell scores through it).
    let scorer = model.scorer();
    let mut out = Vec::new();
    // Highest memory first, matching the figure layout.
    for mem_mhz in clocks.supported_memory_clocks().into_iter().rev() {
        let configs = clocks.actual_configs_for(mem_mhz);
        let mut per_benchmark = Vec::new();
        let mut pooled_truth = Vec::new();
        let mut pooled_pred = Vec::new();
        for eval in evals {
            let mut truth = Vec::with_capacity(configs.len());
            let mut pred = Vec::with_capacity(configs.len());
            for &cfg in &configs {
                let Some(measured) = eval.measured_at(cfg) else {
                    continue;
                };
                let predicted = scorer.predict_objectives(&eval.features, cfg);
                let (t, p) = match objective {
                    Objective::Speedup => (measured.speedup, predicted.speedup),
                    Objective::Energy => (measured.energy, predicted.energy),
                };
                truth.push(t);
                pred.push(p);
            }
            if truth.is_empty() {
                continue;
            }
            let errors = gpufreq_ml::percent_errors(&truth, &pred);
            per_benchmark.push(BenchmarkErrors {
                name: eval.display_name.clone(),
                stats: BoxStats::from_values(&errors),
            });
            pooled_truth.extend(truth);
            pooled_pred.extend(pred);
        }
        let rmse = if pooled_truth.is_empty() {
            0.0
        } else {
            rmse_percent(&pooled_truth, &pooled_pred)
        };
        out.push(DomainErrorAnalysis {
            mem_mhz,
            label: domain_label(mem_mhz),
            per_benchmark,
            rmse_percent: rmse,
        });
    }
    out
}

fn domain_label(mem_mhz: u32) -> String {
    match mem_mhz {
        3505 => "Mem_H".to_string(),
        3304 => "Mem_h".to_string(),
        810 => "Mem_l".to_string(),
        405 => "Mem_L".to_string(),
        other => format!("Mem_{other}"),
    }
}

/// Misprediction structure of one predicted Pareto set (§4.5).
///
/// The paper notes that "errors are not all equals: overestimation on
/// speedup, as well as underestimation on energy, are much worse than
/// the opposite, as they may introduce wrong dominant solutions". This
/// analysis counts exactly those failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MispredictionAnalysis {
    /// Predicted-set points that are truly on the measured front.
    pub true_members: usize,
    /// Predicted-set points that are measured-dominated by some other
    /// *measured* point (wrong dominant solutions).
    pub false_members: usize,
    /// Measured-front points with no predicted point nearby (missed
    /// trade-offs). "Nearby" = within `tolerance` in both objectives.
    pub missed: usize,
    /// Points whose *predicted* objectives overestimated speedup by
    /// more than `tolerance` — the dangerous direction.
    pub speedup_overestimates: usize,
    /// Points whose *predicted* objectives underestimated normalized
    /// energy by more than `tolerance` — the dangerous direction.
    pub energy_underestimates: usize,
}

/// Analyze how a benchmark's predicted set mispredicts, with the given
/// objective-space tolerance.
pub fn misprediction_analysis(eval: &BenchmarkEvaluation, tolerance: f64) -> MispredictionAnalysis {
    let measured_all: Vec<Objectives> = eval
        .ground_truth
        .points
        .iter()
        .map(|p| Objectives::new(p.speedup, p.norm_energy))
        .collect();
    let mut true_members = 0;
    let mut false_members = 0;
    for p in &eval.predicted_measured {
        if measured_all.iter().any(|m| m.dominates(p)) {
            false_members += 1;
        } else {
            true_members += 1;
        }
    }
    let missed = eval
        .real_front
        .iter()
        .filter(|f| {
            !eval.predicted_measured.iter().any(|p| {
                (p.speedup - f.speedup).abs() <= tolerance
                    && (p.energy - f.energy).abs() <= tolerance
            })
        })
        .count();
    let mut speedup_overestimates = 0;
    let mut energy_underestimates = 0;
    for point in &eval.prediction.pareto_set {
        if let Some(measured) = eval.measured_at(point.config) {
            if point.objectives.speedup > measured.speedup + tolerance {
                speedup_overestimates += 1;
            }
            if point.objectives.energy < measured.energy - tolerance {
                energy_underestimates += 1;
            }
        }
    }
    MispredictionAnalysis {
        true_members,
        false_members,
        missed,
        speedup_overestimates,
        energy_underestimates,
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Benchmark display name.
    pub benchmark: String,
    /// Coverage difference `D(P*, P′)`.
    pub coverage_d: f64,
    /// `|P′|` — size of the predicted Pareto set.
    pub predicted_points: usize,
    /// `|P*|` — size of the real Pareto set.
    pub real_points: usize,
    /// Extreme-point distance at maximum speedup.
    pub max_speedup_dist: ExtremeDistance,
    /// Extreme-point distance at minimum energy.
    pub min_energy_dist: ExtremeDistance,
}

/// Assemble Table 2 from a set of evaluations (already sorted if they
/// came from [`evaluate_all`]).
pub fn table2(evals: &[BenchmarkEvaluation]) -> Vec<Table2Row> {
    evals
        .iter()
        .map(|e| Table2Row {
            benchmark: e.display_name.clone(),
            coverage_d: e.coverage_d,
            predicted_points: e.prediction.pareto_set.len(),
            real_points: e.real_front.len(),
            max_speedup_dist: e.extreme_max_speedup,
            min_energy_dist: e.extreme_min_energy,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use crate::pipeline::build_training_data;
    use gpufreq_ml::{SvmKernel, SvrParams};

    fn fast_config() -> ModelConfig {
        ModelConfig {
            speedup: SvrParams {
                c: 10.0,
                ..SvrParams::paper_speedup()
            },
            energy: SvrParams {
                c: 10.0,
                kernel: SvmKernel::Rbf { gamma: 1.0 },
                ..SvrParams::paper_energy()
            },
        }
    }

    fn setup() -> (GpuSimulator, FreqScalingModel) {
        let sim = GpuSimulator::titan_x();
        let benches: Vec<_> = gpufreq_synth::generate_all()
            .into_iter()
            .step_by(7)
            .collect();
        let data = build_training_data(&sim, &benches, 12);
        let model = FreqScalingModel::train(&data, &fast_config());
        (sim, model)
    }

    #[test]
    fn evaluation_artifacts_are_consistent() {
        let (sim, model) = setup();
        let w = gpufreq_workloads::workload("knn").unwrap();
        let eval = evaluate_workload(&sim, &model, &w);
        // 40 sampled settings plus the default baseline.
        assert!(eval.ground_truth.points.len() >= EVAL_SETTINGS);
        assert!(!eval.real_front.is_empty());
        assert_eq!(
            eval.predicted_measured.len(),
            eval.prediction.pareto_set.len()
        );
        assert!(eval.coverage_d >= 0.0);
        // The real front is mutually non-dominating.
        for a in &eval.real_front {
            for b in &eval.real_front {
                assert!(!a.dominates(b));
            }
        }
    }

    #[test]
    fn error_analysis_has_four_domains() {
        let (sim, model) = setup();
        let evals: Vec<_> = ["knn", "mt"]
            .iter()
            .map(|n| evaluate_workload(&sim, &model, &gpufreq_workloads::workload(n).unwrap()))
            .collect();
        let analysis = error_analysis(&sim, &model, &evals, Objective::Speedup);
        assert_eq!(analysis.len(), 4);
        assert_eq!(analysis[0].label, "Mem_H");
        assert_eq!(analysis[3].label, "Mem_L");
        for domain in &analysis {
            assert_eq!(domain.per_benchmark.len(), 2);
            assert!(domain.rmse_percent.is_finite());
        }
    }

    #[test]
    fn table2_rows_match_evaluations() {
        let (sim, model) = setup();
        let ws: Vec<_> = ["knn", "blackscholes"]
            .iter()
            .map(|n| gpufreq_workloads::workload(n).unwrap())
            .collect();
        let evals = evaluate_all(&sim, &model, &ws);
        let rows = table2(&evals);
        assert_eq!(rows.len(), 2);
        // Sorted by coverage difference ascending.
        assert!(rows[0].coverage_d <= rows[1].coverage_d);
        for r in &rows {
            assert!(r.predicted_points > 0);
            assert!(r.real_points > 0);
        }
    }

    #[test]
    fn misprediction_analysis_is_consistent() {
        let (sim, model) = setup();
        let w = gpufreq_workloads::workload("perlin").unwrap();
        let eval = evaluate_workload(&sim, &model, &w);
        let mp = misprediction_analysis(&eval, 0.02);
        assert_eq!(
            mp.true_members + mp.false_members,
            eval.predicted_measured.len(),
            "every predicted point is classified exactly once"
        );
        assert!(mp.missed <= eval.real_front.len());
        // With a huge tolerance nothing is missed.
        let lax = misprediction_analysis(&eval, 10.0);
        assert_eq!(lax.missed, 0);
        assert_eq!(lax.speedup_overestimates, 0);
        assert_eq!(lax.energy_underestimates, 0);
    }

    #[test]
    fn measured_at_finds_default() {
        let (sim, model) = setup();
        let w = gpufreq_workloads::workload("aes").unwrap();
        let eval = evaluate_workload(&sim, &model, &w);
        let at_default = eval.measured_at(sim.spec().clocks.default).unwrap();
        assert!((at_default.speedup - 1.0).abs() < 1e-9);
        assert!((at_default.energy - 1.0).abs() < 1e-9);
    }
}
