//! The workspace error type.
//!
//! Every fallible operation on the public surface of `gpufreq-core` —
//! training, prediction, kernel analysis, artifact persistence —
//! returns [`Error`]. Panics are reserved for internal invariants
//! (e.g. a trained model always has at least one domain head);
//! malformed *input* — an empty corpus, an unparseable kernel, a
//! corrupt or mismatched model artifact — is always a typed error the
//! caller can match on.

use gpufreq_kernel::{AnalysisError, ParseError};
use gpufreq_sim::{Device, UnknownDevice};
use std::fmt;

/// The artifact format version this build reads and writes.
pub const MODEL_FORMAT_VERSION: u32 = 1;

/// Any failure on the fallible `gpufreq` surface.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Training was attempted on a corpus with zero samples.
    EmptyCorpus,
    /// The training data's per-row configuration list does not match
    /// its sample count.
    MisalignedRows {
        /// Number of feature/target rows.
        rows: usize,
        /// Number of per-row configurations.
        configs: usize,
    },
    /// A kernel source failed to lex/parse.
    KernelParse {
        /// The file the source came from, when known.
        path: Option<String>,
        /// The underlying parser diagnostic.
        source: ParseError,
    },
    /// A kernel parsed but could not be statically analyzed.
    KernelAnalysis {
        /// The file the source came from, when known.
        path: Option<String>,
        /// The underlying analysis diagnostic.
        source: AnalysisError,
    },
    /// A source file contained no `__kernel` function.
    NoKernelFound {
        /// The file the source came from, when known.
        path: Option<String>,
    },
    /// Prediction was asked for a feature vector containing NaN or
    /// infinite components.
    NonFiniteFeatures,
    /// A device id did not name a registered device.
    UnknownDevice(UnknownDevice),
    /// A benchmark name did not match any of the twelve workloads.
    UnknownWorkload {
        /// The name that failed to resolve.
        name: String,
    },
    /// Reading or writing a file failed.
    Io {
        /// The file involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A model artifact (or bare model) failed to deserialize.
    MalformedArtifact {
        /// What the JSON failed to decode as.
        message: String,
    },
    /// The JSON is a pre-versioning bare [`FreqScalingModel`] with no
    /// `format_version`/`device` envelope. Retrain with the current
    /// tooling (`gpufreq train`) to produce a versioned artifact.
    ///
    /// [`FreqScalingModel`]: crate::FreqScalingModel
    LegacyArtifact,
    /// The artifact's `format_version` is not one this build reads.
    UnsupportedFormatVersion {
        /// The version recorded in the artifact.
        found: u32,
        /// The version this build supports ([`MODEL_FORMAT_VERSION`]).
        supported: u32,
    },
    /// The artifact was trained on a different device than requested.
    DeviceMismatch {
        /// The device recorded in the artifact.
        artifact: Device,
        /// The device the caller asked for.
        requested: Device,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyCorpus => f.write_str("cannot train on an empty corpus"),
            Error::MisalignedRows { rows, configs } => write!(
                f,
                "training data is misaligned: {rows} sample rows but {configs} row configurations"
            ),
            Error::KernelParse { path, source } => match path {
                Some(p) => write!(f, "{p}: {source}"),
                None => write!(f, "kernel parse error: {source}"),
            },
            Error::KernelAnalysis { path, source } => match path {
                Some(p) => write!(f, "{p}: {source}"),
                None => write!(f, "kernel analysis error: {source}"),
            },
            Error::NoKernelFound { path } => match path {
                Some(p) => write!(f, "{p}: no __kernel function found"),
                None => f.write_str("no __kernel function found"),
            },
            Error::NonFiniteFeatures => {
                f.write_str("feature vector contains NaN or infinite components")
            }
            Error::UnknownDevice(e) => e.fmt(f),
            Error::UnknownWorkload { name } => write!(f, "unknown workload `{name}`"),
            Error::Io { path, source } => write!(f, "{path}: {source}"),
            Error::MalformedArtifact { message } => {
                write!(f, "malformed model artifact: {message}")
            }
            Error::LegacyArtifact => f.write_str(
                "legacy model file: bare FreqScalingModel JSON without a format_version \
                 envelope; retrain with `gpufreq train` to produce a versioned artifact",
            ),
            Error::UnsupportedFormatVersion { found, supported } => write!(
                f,
                "unsupported model artifact format_version {found} (this build reads \
                 version {supported})"
            ),
            Error::DeviceMismatch {
                artifact,
                requested,
            } => write!(
                f,
                "model artifact was trained on `{artifact}` but `{requested}` was requested"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::KernelParse { source, .. } => Some(source),
            Error::KernelAnalysis { source, .. } => Some(source),
            Error::UnknownDevice(e) => Some(e),
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<UnknownDevice> for Error {
    fn from(e: UnknownDevice) -> Error {
        Error::UnknownDevice(e)
    }
}

/// A [`std::result::Result`] specialized to the workspace [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn displays_are_specific() {
        assert!(Error::EmptyCorpus.to_string().contains("empty corpus"));
        let e = Error::MisalignedRows {
            rows: 10,
            configs: 7,
        };
        assert!(e.to_string().contains("10") && e.to_string().contains("7"));
        let e = Error::UnsupportedFormatVersion {
            found: 99,
            supported: MODEL_FORMAT_VERSION,
        };
        assert!(e.to_string().contains("99"), "{e}");
        let e = Error::DeviceMismatch {
            artifact: Device::TitanX,
            requested: Device::TeslaP100,
        };
        assert!(
            e.to_string().contains("titan-x") && e.to_string().contains("tesla-p100"),
            "{e}"
        );
    }

    #[test]
    fn sources_are_chained() {
        let unknown: UnknownDevice = "nope".parse::<Device>().unwrap_err();
        let e: Error = unknown.into();
        assert!(e.source().is_some());
        assert!(Error::EmptyCorpus.source().is_none());
    }
}
