//! The parallel execution engine: deterministic fan-out of the
//! embarrassingly parallel stages of the pipeline.
//!
//! Everything above [`GpuSimulator::sweep`](gpufreq_sim::GpuSimulator)
//! — per-benchmark training sweeps, per-workload evaluation,
//! per-fold cross-validation, per-source batch prediction — is
//! independent work over an indexed list. [`Engine`] packages the one
//! primitive they all need: [`Engine::map`], a scoped-thread fan-out
//! over a slice whose results are merged back **in input order**, so a
//! parallel run is bit-identical to a serial one regardless of how the
//! OS schedules the workers (pinned by `tests/determinism.rs`).
//!
//! ```
//! use gpufreq_core::Engine;
//!
//! let engine = Engine::new(Some(4));
//! let squares = engine.map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! // Same result, same order, on one thread:
//! assert_eq!(Engine::serial().map(&[1u64, 2, 3, 4], |&x| x * x), squares);
//! ```
//!
//! The module also hosts [`ProfileCache`], the shared source-keyed
//! kernel-analysis cache used by
//! [`TrainedPlanner::predict_batch`](crate::TrainedPlanner::predict_batch),
//! the CLI's `sweep` subcommand and the experiment binaries, so a
//! kernel that appears many times in a batch is parsed and analyzed
//! exactly once.

use crate::error::Result;
use crate::planner::analyze_source;
use gpufreq_kernel::{KernelProfile, StaticFeatures};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A deterministic parallel map over indexed work items.
///
/// `jobs = None` resolves to [`std::thread::available_parallelism`]
/// (capped at 16); `Some(1)` runs strictly serially on the calling
/// thread (no worker threads are spawned at all); `Some(n)` pins the
/// worker count — the knob CI uses to exercise both schedules on
/// 2-core runners.
///
/// Results never depend on the worker count: work items are claimed
/// from an atomic queue but merged back by index, so `map` with any
/// `jobs` value returns exactly what a serial loop would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engine {
    jobs: Option<usize>,
}

impl Default for Engine {
    /// An engine using every available core (capped at 16).
    fn default() -> Engine {
        Engine { jobs: None }
    }
}

impl Engine {
    /// Hard cap on worker threads, matching the simulator's sweep cap.
    const MAX_JOBS: usize = 16;

    /// An engine with an explicit worker count (`None` = all cores).
    pub fn new(jobs: Option<usize>) -> Engine {
        Engine { jobs }
    }

    /// The strictly serial engine: `map` degenerates to a plain loop.
    pub fn serial() -> Engine {
        Engine { jobs: Some(1) }
    }

    /// The configured job override, if any.
    pub fn jobs(&self) -> Option<usize> {
        self.jobs
    }

    /// The number of worker threads `map` will actually use for
    /// `items` items: the override (or core count), clamped to
    /// `[1, min(items, 16)]`.
    pub fn effective_jobs(&self, items: usize) -> usize {
        let requested = self
            .jobs
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));
        requested.clamp(1, Engine::MAX_JOBS).min(items.max(1))
    }

    /// The engine to hand to *nested* parallel stages: serial whenever
    /// this engine already fans out, so a parallel outer loop does not
    /// multiply into `jobs x jobs` oversubscription.
    pub fn inner(&self, items: usize) -> Engine {
        if self.effective_jobs(items) > 1 {
            Engine::serial()
        } else {
            *self
        }
    }

    /// Apply `f` to every element of `items` and return the results in
    /// input order.
    ///
    /// Work is distributed over [`effective_jobs`](Engine::effective_jobs)
    /// scoped threads pulling indices from an atomic queue; the merge
    /// is by index, so the output is identical for every worker count.
    /// A panic in `f` propagates to the caller.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_indexed(items, |_, item| f(item))
    }

    /// [`map`](Engine::map) where `f` also receives the item's index —
    /// for stages that label their output by position.
    pub fn map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let threads = self.effective_jobs(items.len());
        if threads <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let indexed: Vec<(usize, R)> = std::thread::scope(|s| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            // ordering: work distribution only — the
                            // RMW hands each index to exactly one
                            // worker; results are published by the
                            // scope join, not by this counter.
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            local.push((i, f(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("engine worker panicked"))
                .collect()
        });
        let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
        out.resize_with(items.len(), || None);
        for (i, r) in indexed {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every index produced"))
            .collect()
    }
}

/// A shared, thread-safe kernel-analysis cache keyed by the (hashed)
/// kernel source.
///
/// Parsing and statically analyzing an OpenCL-C kernel is pure — the
/// same source always yields the same [`StaticFeatures`] and
/// [`KernelProfile`] — so repeated kernels (a batch with duplicates,
/// the same file swept on several devices, figure binaries sharing
/// workloads) only pay for analysis once. The full source string is
/// the map key (hashed internally by the table), so distinct kernels
/// can never alias, whatever their hashes do. Successful analyses are
/// cached; failing sources are re-analyzed on every call so each
/// caller gets its own fully detailed error value.
///
/// All methods take `&self`; one cache can be shared across the
/// engine's worker threads (and across planners) behind an
/// [`Arc`].
///
/// By default the cache is **unbounded** (batch runs are finite, and
/// existing callers rely on every source staying resident). Long-lived
/// processes — the `gpufreq-serve` daemon holds one cache for the
/// lifetime of the server — construct it with
/// [`with_capacity`](ProfileCache::with_capacity) instead: once the
/// bound is reached, the least-recently-used entry is evicted
/// (counted by [`evictions`](ProfileCache::evictions)). Eviction only
/// drops the cache's own reference; [`Arc`]s already handed to
/// callers stay fully usable.
#[derive(Debug, Default)]
pub struct ProfileCache {
    inner: Mutex<CacheInner>,
    /// `None` = unbounded (the default).
    capacity: Option<usize>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

/// Map + recency index under one lock, so eviction decisions are
/// consistent with lookups. Keys are shared `Arc<str>`s: the recency
/// index holds clones of the map's keys, not second copies of the
/// (kilobytes-long) source text, and bumping recency on a hit clones
/// a pointer, not the source.
#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<Arc<str>, CacheSlot>,
    /// Recency index: strictly increasing tick → source key. The
    /// smallest tick is the least-recently-used entry. Only
    /// maintained for bounded caches — the default unbounded cache
    /// never consults it, so its hit path stays a single map lookup.
    recency: BTreeMap<u64, Arc<str>>,
    tick: u64,
}

#[derive(Debug)]
struct CacheSlot {
    analyzed: Arc<(StaticFeatures, KernelProfile)>,
    /// The map key, shared with the recency index.
    key: Arc<str>,
    /// This entry's current position in the recency index.
    tick: u64,
}

impl CacheInner {
    /// Mark `key` as most recently used, keeping `recency` in sync.
    /// Bounded caches only — unbounded ones skip recency entirely.
    fn touch(&mut self, key: &str) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(slot) = self.entries.get_mut(key) {
            self.recency.remove(&slot.tick);
            slot.tick = tick;
            self.recency.insert(tick, Arc::clone(&slot.key));
        }
    }
}

impl ProfileCache {
    /// An empty, unbounded cache.
    pub fn new() -> ProfileCache {
        ProfileCache::default()
    }

    /// An empty cache bounded to at most `capacity` entries, evicting
    /// least-recently-used sources beyond that. A capacity of `0` is
    /// treated as `1` (the entry just analyzed is always insertable).
    pub fn with_capacity(capacity: usize) -> ProfileCache {
        ProfileCache {
            capacity: Some(capacity.max(1)),
            ..ProfileCache::default()
        }
    }

    /// An empty, unbounded cache ready for sharing.
    pub fn shared() -> Arc<ProfileCache> {
        Arc::new(ProfileCache::new())
    }

    /// The configured entry bound (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Analyze `source` (see [`analyze_source`]), returning the cached
    /// result when this source was analyzed before.
    ///
    /// # Errors
    /// Exactly those of [`analyze_source`]; errors are never cached.
    pub fn analyze(&self, source: &str) -> Result<Arc<(StaticFeatures, KernelProfile)>> {
        {
            let mut inner = self.inner.lock().expect("cache poisoned");
            if let Some(slot) = inner.entries.get(source) {
                let hit = Arc::clone(&slot.analyzed);
                // ordering: hit/miss/eviction counters are telemetry;
                // cached entries are published by the cache mutex,
                // never by these counters (all sites in this file).
                self.hits.fetch_add(1, Ordering::Relaxed);
                // Only bounded caches pay for recency bookkeeping;
                // the (default) unbounded hit path is one lookup.
                if self.capacity.is_some() {
                    inner.touch(source);
                }
                return Ok(hit);
            }
        }
        // ordering: telemetry (see the counter note in the hit path).
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Analyze outside the lock: parsing is the expensive part and
        // other sources should not serialize behind it. Two threads
        // racing on the same new source both analyze, then agree.
        let analyzed = Arc::new(analyze_source(source, None)?);
        let mut inner = self.inner.lock().expect("cache poisoned");
        let result = match inner.entries.get(source) {
            // The race lost: keep the first insertion.
            Some(slot) => Arc::clone(&slot.analyzed),
            None => {
                let key: Arc<str> = Arc::from(source);
                inner.entries.insert(
                    Arc::clone(&key),
                    CacheSlot {
                        analyzed: Arc::clone(&analyzed),
                        key,
                        tick: 0, // fixed by touch() for bounded caches
                    },
                );
                analyzed
            }
        };
        if let Some(capacity) = self.capacity {
            inner.touch(source);
            while inner.entries.len() > capacity {
                let Some((_, lru_key)) = inner.recency.pop_first() else {
                    break;
                };
                inner.entries.remove(lru_key.as_ref());
                // ordering: telemetry (see the hit-path note).
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(result)
    }

    /// Number of calls answered from the cache so far.
    pub fn hits(&self) -> usize {
        // ordering: telemetry read; nothing synchronizes on the
        // counters (here and in the two reads below).
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of calls not answered from the cache (each ran the
    /// analysis, whether or not it succeeded).
    pub fn misses(&self) -> usize {
        // ordering: telemetry read (see `hits`).
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of least-recently-used entries evicted to keep the cache
    /// within [`with_capacity`](ProfileCache::with_capacity). Always 0
    /// for the default unbounded cache.
    pub fn evictions(&self) -> usize {
        // ordering: telemetry read (see `hits`).
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of distinct sources currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").entries.len()
    }

    /// Whether the cache holds no entries yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAXPY: &str = "__kernel void saxpy(__global float* x, __global float* y, float a) {
        uint i = get_global_id(0);
        y[i] = a * x[i] + y[i];
    }";

    #[test]
    fn map_preserves_input_order_for_any_job_count() {
        let items: Vec<u64> = (0..97).collect();
        let serial = Engine::serial().map(&items, |&x| x.wrapping_mul(x) ^ 0xabc);
        for jobs in [2, 3, 4, 16, 64] {
            let parallel = Engine::new(Some(jobs)).map(&items, |&x| x.wrapping_mul(x) ^ 0xabc);
            assert_eq!(parallel, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn map_indexed_sees_true_indices() {
        let items = ["a", "b", "c"];
        let got = Engine::new(Some(2)).map_indexed(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn map_handles_empty_and_single_inputs() {
        let engine = Engine::new(Some(8));
        assert_eq!(engine.map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(engine.map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn effective_jobs_clamps() {
        assert_eq!(Engine::new(Some(0)).effective_jobs(10), 1);
        assert_eq!(Engine::new(Some(4)).effective_jobs(2), 2);
        assert_eq!(Engine::new(Some(99)).effective_jobs(1000), 16);
        assert_eq!(Engine::serial().effective_jobs(1000), 1);
    }

    #[test]
    fn inner_engine_is_serial_under_a_parallel_outer() {
        assert_eq!(Engine::new(Some(4)).inner(8), Engine::serial());
        // A serial outer leaves the inner stage free to parallelize.
        assert_eq!(Engine::serial().inner(8), Engine::serial());
        let wide = Engine::new(Some(4));
        assert_eq!(wide.inner(1), wide);
    }

    #[test]
    fn cache_hits_after_first_analysis() {
        let cache = ProfileCache::new();
        let first = cache.analyze(SAXPY).unwrap();
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 1, 1));
        let second = cache.analyze(SAXPY).unwrap();
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        assert_eq!(first.0, second.0);
        assert!(Arc::ptr_eq(&first, &second), "hit returns the same entry");
    }

    #[test]
    fn cache_errors_are_not_cached() {
        let cache = ProfileCache::new();
        assert!(cache.analyze("int main() {}").is_err());
        assert!(cache.analyze("int main() {}").is_err());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.misses(), 2, "every failing call re-analyzes");
        assert_eq!(cache.hits(), 0);
    }

    /// A trivially valid kernel whose source embeds `i`, so each index
    /// is a distinct cache key.
    fn numbered_kernel(i: usize) -> String {
        format!(
            "__kernel void k{i}(__global float* x) {{
                uint t = get_global_id(0);
                x[t] = x[t] * {i}.0f;
            }}"
        )
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let cache = ProfileCache::with_capacity(2);
        assert_eq!(cache.capacity(), Some(2));
        let k0 = numbered_kernel(0);
        let k1 = numbered_kernel(1);
        let k2 = numbered_kernel(2);
        cache.analyze(&k0).unwrap();
        cache.analyze(&k1).unwrap();
        // Touch k0 so k1 becomes the LRU entry...
        cache.analyze(&k0).unwrap();
        // ...then overflow: k1 is evicted, k0 survives.
        cache.analyze(&k2).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        let hits_before = cache.hits();
        cache.analyze(&k0).unwrap();
        assert_eq!(cache.hits(), hits_before + 1, "k0 was retained");
        cache.analyze(&k1).unwrap();
        assert_eq!(cache.misses(), 4, "k1 was evicted and re-analyzed");
        assert_eq!(cache.evictions(), 2, "re-inserting k1 evicted again");
    }

    #[test]
    fn eviction_keeps_in_flight_arcs_alive() {
        let cache = ProfileCache::with_capacity(1);
        let k0 = numbered_kernel(0);
        let held = cache.analyze(&k0).unwrap();
        // Evict k0 by inserting another source.
        cache.analyze(&numbered_kernel(1)).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
        // The evicted entry's Arc is still fully usable.
        assert_eq!(held.1.name, "k0");
        // And re-analyzing k0 is a miss producing an equal result.
        let again = cache.analyze(&k0).unwrap();
        assert!(!Arc::ptr_eq(&held, &again));
        assert_eq!(held.0, again.0);
    }

    #[test]
    fn default_cache_is_unbounded() {
        let cache = ProfileCache::new();
        assert_eq!(cache.capacity(), None);
        for i in 0..64 {
            cache.analyze(&numbered_kernel(i)).unwrap();
        }
        assert_eq!(cache.len(), 64);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn cache_is_shareable_across_engine_workers() {
        let cache = ProfileCache::shared();
        let sources = vec![SAXPY; 32];
        let engine = Engine::new(Some(4));
        let results = engine.map(&sources, |src| cache.analyze(src).unwrap());
        assert_eq!(results.len(), 32);
        assert_eq!(cache.len(), 1, "one distinct source");
        assert_eq!(cache.hits() + cache.misses(), 32);
        for r in &results {
            assert_eq!(r.0, results[0].0);
        }
    }
}
