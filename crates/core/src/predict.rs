//! The prediction phase (§3.1, Fig. 3) and the mem-L heuristic (§4.5).
//!
//! Given a new kernel's static features: build one feature vector per
//! candidate frequency configuration, predict both objectives with the
//! trained model, and reduce to the predicted Pareto set with
//! Algorithm 1. The lowest memory domain (405 MHz) is excluded from
//! modeling — its six settings are too few and too erratic to learn
//! (§4.3–4.4) — and is covered instead by the paper's simple heuristic:
//! always add the last (highest-core) mem-L configuration to the
//! predicted set.

use crate::model::FreqScalingModel;
use gpufreq_kernel::{FreqConfig, StaticFeatures};
use gpufreq_pareto::{pareto_set_simple, Objectives};
use gpufreq_sim::ClockTable;
use serde::{Deserialize, Serialize};

/// The memory clock (MHz) below which configurations are not modeled
/// but handled by the heuristic.
pub const MEM_L_MHZ: u32 = 405;

/// One candidate configuration with its predicted objectives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictedPoint {
    /// The frequency configuration.
    pub config: FreqConfig,
    /// Model-predicted speedup and normalized energy.
    pub objectives: Objectives,
    /// `true` if this point came from the mem-L heuristic rather than
    /// the model.
    pub heuristic: bool,
}

/// The output of the prediction phase for one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPrediction {
    /// Predictions for every modeled configuration (mem-l/h/H).
    pub all_points: Vec<PredictedPoint>,
    /// The predicted Pareto set (Algorithm 1 over `all_points`, plus
    /// the mem-L heuristic point when available).
    pub pareto_set: Vec<PredictedPoint>,
}

impl ParetoPrediction {
    /// The predicted-Pareto configurations (what a user would actually
    /// apply via NVML).
    pub fn configs(&self) -> Vec<FreqConfig> {
        self.pareto_set.iter().map(|p| p.config).collect()
    }

    /// The predicted point with maximum speedup, or `None` when the
    /// Pareto set is empty or no point has a finite speedup. NaN-safe:
    /// non-finite predictions are never recommended (and never panic).
    pub fn max_speedup(&self) -> Option<&PredictedPoint> {
        self.pareto_set
            .iter()
            .filter(|p| p.objectives.speedup.is_finite())
            .max_by(|a, b| a.objectives.speedup.total_cmp(&b.objectives.speedup))
    }

    /// The predicted point with minimum normalized energy, or `None`
    /// when the Pareto set is empty or no point has a finite energy.
    /// NaN-safe like [`max_speedup`](ParetoPrediction::max_speedup).
    pub fn min_energy(&self) -> Option<&PredictedPoint> {
        self.pareto_set
            .iter()
            .filter(|p| p.objectives.energy.is_finite())
            .min_by(|a, b| a.objectives.energy.total_cmp(&b.objectives.energy))
    }
}

/// Run the full prediction phase for a kernel with `features` over the
/// actual configurations of `clocks` (Fig. 3, steps 1–9).
pub fn predict_pareto(
    model: &FreqScalingModel,
    features: &StaticFeatures,
    clocks: &ClockTable,
) -> ParetoPrediction {
    predict_pareto_at(model, features, clocks, &clocks.actual_configs())
}

/// The prediction phase over an explicit candidate-configuration list
/// (the paper's evaluation predicts at the same 40 sampled settings the
/// ground truth is measured at; production use passes all supported
/// configurations).
pub fn predict_pareto_at(
    model: &FreqScalingModel,
    features: &StaticFeatures,
    clocks: &ClockTable,
    candidates: &[FreqConfig],
) -> ParetoPrediction {
    // An empty candidate list has no prediction at all — not even the
    // mem-L heuristic point, which would otherwise smuggle a
    // configuration into a deliberately empty search space.
    if candidates.is_empty() {
        return ParetoPrediction {
            all_points: Vec::new(),
            pareto_set: Vec::new(),
        };
    }
    // Steps 2–8: predict both objectives for every modeled setting.
    let all_points: Vec<PredictedPoint> = candidates
        .iter()
        .filter(|c| c.mem_mhz > MEM_L_MHZ)
        .map(|&config| PredictedPoint {
            config,
            objectives: model.predict_objectives(features, config),
            heuristic: false,
        })
        .collect();
    // Step 9: Algorithm 1 over the predictions.
    let objectives: Vec<Objectives> = all_points.iter().map(|p| p.objectives).collect();
    let mut pareto_set: Vec<PredictedPoint> = pareto_set_simple(&objectives)
        .into_iter()
        .map(|i| all_points[i])
        .collect();
    // §4.5: append the last (highest-core) mem-L configuration. Its
    // objectives are still model-predicted (there is nothing better
    // available statically), but it is flagged as heuristic.
    if let Some(mem_l_last) = clocks.actual_configs_for(MEM_L_MHZ).into_iter().last() {
        pareto_set.push(PredictedPoint {
            config: mem_l_last,
            objectives: model.predict_objectives(features, mem_l_last),
            heuristic: true,
        });
    }
    ParetoPrediction {
        all_points,
        pareto_set,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FreqScalingModel, ModelConfig};
    use crate::pipeline::build_training_data;
    use gpufreq_ml::{SvmKernel, SvrParams};
    use gpufreq_sim::GpuSimulator;

    fn fast_config() -> ModelConfig {
        ModelConfig {
            speedup: SvrParams {
                c: 10.0,
                ..SvrParams::paper_speedup()
            },
            energy: SvrParams {
                c: 10.0,
                kernel: SvmKernel::Rbf { gamma: 1.0 },
                ..SvrParams::paper_energy()
            },
        }
    }

    fn setup() -> (FreqScalingModel, GpuSimulator) {
        let sim = GpuSimulator::titan_x();
        let benches: Vec<_> = gpufreq_synth::generate_all()
            .into_iter()
            .step_by(9)
            .collect();
        let data = build_training_data(&sim, &benches, 10);
        (FreqScalingModel::train(&data, &fast_config()), sim)
    }

    #[test]
    fn prediction_covers_modeled_domains_only() {
        let (model, sim) = setup();
        let f = gpufreq_workloads::workload("knn")
            .unwrap()
            .static_features();
        let pred = predict_pareto(&model, &f, &sim.spec().clocks);
        // 71 + 50 + 50 modeled configurations.
        assert_eq!(pred.all_points.len(), 171);
        assert!(pred.all_points.iter().all(|p| p.config.mem_mhz > MEM_L_MHZ));
    }

    #[test]
    fn pareto_set_is_mutually_non_dominating_modulo_heuristic() {
        let (model, sim) = setup();
        let f = gpufreq_workloads::workload("kmeans")
            .unwrap()
            .static_features();
        let pred = predict_pareto(&model, &f, &sim.spec().clocks);
        let modeled: Vec<_> = pred.pareto_set.iter().filter(|p| !p.heuristic).collect();
        for a in &modeled {
            for b in &modeled {
                assert!(!a.objectives.dominates(&b.objectives));
            }
        }
    }

    #[test]
    fn heuristic_point_is_last_mem_l_config() {
        let (model, sim) = setup();
        let f = gpufreq_workloads::workload("mt").unwrap().static_features();
        let pred = predict_pareto(&model, &f, &sim.spec().clocks);
        let heuristic: Vec<_> = pred.pareto_set.iter().filter(|p| p.heuristic).collect();
        assert_eq!(heuristic.len(), 1);
        assert_eq!(heuristic[0].config, FreqConfig::new(405, 405));
    }

    #[test]
    fn extremes_exist_and_are_ordered() {
        let (model, sim) = setup();
        let f = gpufreq_workloads::workload("aes")
            .unwrap()
            .static_features();
        let pred = predict_pareto(&model, &f, &sim.spec().clocks);
        let max_s = pred.max_speedup().unwrap();
        let min_e = pred.min_energy().unwrap();
        assert!(max_s.objectives.speedup >= min_e.objectives.speedup);
        assert!(min_e.objectives.energy <= max_s.objectives.energy);
    }

    #[test]
    fn empty_candidate_list_yields_empty_prediction() {
        let (model, sim) = setup();
        let f = gpufreq_workloads::workload("knn")
            .unwrap()
            .static_features();
        let pred = predict_pareto_at(&model, &f, &sim.spec().clocks, &[]);
        assert!(pred.all_points.is_empty());
        assert!(pred.pareto_set.is_empty());
        assert!(pred.max_speedup().is_none());
        assert!(pred.min_energy().is_none());
    }

    #[test]
    fn extremes_are_nan_safe() {
        // A hand-built prediction with a NaN objective must not panic.
        let nan_point = PredictedPoint {
            config: FreqConfig::new(3505, 1001),
            objectives: Objectives::new(f64::NAN, f64::NAN),
            heuristic: false,
        };
        let good_point = PredictedPoint {
            config: FreqConfig::new(3505, 1102),
            objectives: Objectives::new(1.1, 0.9),
            heuristic: false,
        };
        let pred = ParetoPrediction {
            all_points: vec![nan_point, good_point],
            pareto_set: vec![nan_point, good_point],
        };
        // Non-finite predictions are excluded from both extremes: the
        // finite point wins each, with no panic.
        assert_eq!(pred.max_speedup().unwrap().config, good_point.config);
        assert_eq!(pred.min_energy().unwrap().config, good_point.config);

        // A set with only NaN objectives recommends nothing.
        let all_nan = ParetoPrediction {
            all_points: vec![nan_point],
            pareto_set: vec![nan_point],
        };
        assert!(all_nan.max_speedup().is_none());
        assert!(all_nan.min_energy().is_none());
    }

    #[test]
    fn p100_prediction_works_without_mem_l() {
        // The P100 has a single 715 MHz domain: no mem-L, no heuristic.
        let (model, _) = setup();
        let sim = GpuSimulator::tesla_p100();
        let f = gpufreq_workloads::workload("knn")
            .unwrap()
            .static_features();
        let pred = predict_pareto(&model, &f, &sim.spec().clocks);
        assert!(!pred.all_points.is_empty());
        assert!(pred.pareto_set.iter().all(|p| !p.heuristic));
    }
}
