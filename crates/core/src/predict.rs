//! The prediction phase (§3.1, Fig. 3) and the mem-L heuristic (§4.5).
//!
//! Given a new kernel's static features: build one feature vector per
//! candidate frequency configuration, predict both objectives with the
//! trained model, and reduce to the predicted Pareto set with
//! Algorithm 1. The lowest memory domain (405 MHz) is excluded from
//! modeling — its six settings are too few and too erratic to learn
//! (§4.3–4.4) — and is covered instead by the paper's simple heuristic:
//! always add the last (highest-core) mem-L configuration to the
//! predicted set.

use crate::model::{FreqScalingModel, ModelScorer};
use gpufreq_kernel::{memory_boundedness, FreqConfig, StaticFeatures, NUM_FEATURES};
use gpufreq_pareto::{pareto_set_simple, Objectives};
use gpufreq_sim::ClockTable;
use serde::{Deserialize, Serialize};

/// The memory clock (MHz) below which configurations are not modeled
/// but handled by the heuristic.
pub const MEM_L_MHZ: u32 = 405;

/// One candidate configuration with its predicted objectives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictedPoint {
    /// The frequency configuration.
    pub config: FreqConfig,
    /// Model-predicted speedup and normalized energy.
    pub objectives: Objectives,
    /// `true` if this point came from the mem-L heuristic rather than
    /// the model.
    pub heuristic: bool,
}

/// The output of the prediction phase for one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPrediction {
    /// Predictions for every modeled configuration (mem-l/h/H).
    pub all_points: Vec<PredictedPoint>,
    /// The predicted Pareto set (Algorithm 1 over `all_points`, plus
    /// the mem-L heuristic point when available).
    pub pareto_set: Vec<PredictedPoint>,
}

impl ParetoPrediction {
    /// The predicted-Pareto configurations (what a user would actually
    /// apply via NVML).
    pub fn configs(&self) -> Vec<FreqConfig> {
        self.pareto_set.iter().map(|p| p.config).collect()
    }

    /// The predicted point with maximum speedup, or `None` when the
    /// Pareto set is empty or no point has a finite speedup. NaN-safe:
    /// non-finite predictions are never recommended (and never panic).
    pub fn max_speedup(&self) -> Option<&PredictedPoint> {
        self.pareto_set
            .iter()
            .filter(|p| p.objectives.speedup.is_finite())
            .max_by(|a, b| a.objectives.speedup.total_cmp(&b.objectives.speedup))
    }

    /// The predicted point with minimum normalized energy, or `None`
    /// when the Pareto set is empty or no point has a finite energy.
    /// NaN-safe like [`max_speedup`](ParetoPrediction::max_speedup).
    pub fn min_energy(&self) -> Option<&PredictedPoint> {
        self.pareto_set
            .iter()
            .filter(|p| p.objectives.energy.is_finite())
            .min_by(|a, b| a.objectives.energy.total_cmp(&b.objectives.energy))
    }

    /// Serialize to compact JSON, byte-identical to
    /// `serde_json::to_string` but written straight into one
    /// preallocated buffer instead of through an intermediate value
    /// tree. A prediction is a few hundred numbers behind fixed field
    /// names — on the serve hot path the tree construction costs more
    /// than the scoring it reports, so this is the serializer the
    /// daemon uses (pinned against the generic one by unit test).
    pub fn to_compact_json(&self) -> String {
        // ~96 bytes per rendered point.
        let mut out =
            String::with_capacity(96 * (self.all_points.len() + self.pareto_set.len()) + 64);
        out.push_str("{\"all_points\":");
        write_points(&self.all_points, &mut out);
        out.push_str(",\"pareto_set\":");
        write_points(&self.pareto_set, &mut out);
        out.push('}');
        out
    }
}

fn write_points(points: &[PredictedPoint], out: &mut String) {
    if points.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"config\":{\"core_mhz\":");
        push_u32(p.config.core_mhz, out);
        out.push_str(",\"mem_mhz\":");
        push_u32(p.config.mem_mhz, out);
        out.push_str("},\"objectives\":{\"speedup\":");
        push_f64(p.objectives.speedup, out);
        out.push_str(",\"energy\":");
        push_f64(p.objectives.energy, out);
        out.push_str("},\"heuristic\":");
        out.push_str(if p.heuristic { "true" } else { "false" });
        out.push('}');
    }
    out.push(']');
}

fn push_u32(v: u32, out: &mut String) {
    use std::fmt::Write as _;
    let _ = write!(out, "{v}");
}

/// One f64, formatted exactly as the generic JSON writer formats it:
/// shortest-round-trip `Display`, integral values with a trailing
/// `.0`, non-finite as `null`.
fn push_f64(v: f64, out: &mut String) {
    use std::fmt::Write as _;
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            let _ = write!(out, "{v:.1}");
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push_str("null");
    }
}

/// Run the full prediction phase for a kernel with `features` over the
/// actual configurations of `clocks` (Fig. 3, steps 1–9).
pub fn predict_pareto(
    model: &FreqScalingModel,
    features: &StaticFeatures,
    clocks: &ClockTable,
) -> ParetoPrediction {
    predict_pareto_at(model, features, clocks, &clocks.actual_configs())
}

/// The prediction phase over an explicit candidate-configuration list
/// (the paper's evaluation predicts at the same 40 sampled settings the
/// ground truth is measured at; production use passes all supported
/// configurations).
pub fn predict_pareto_at(
    model: &FreqScalingModel,
    features: &StaticFeatures,
    clocks: &ClockTable,
    candidates: &[FreqConfig],
) -> ParetoPrediction {
    predict_pareto_scored(&model.scorer(), features, clocks, candidates)
}

/// [`predict_pareto_at`] with a prebuilt [`ModelScorer`] — callers that
/// predict for many kernels against one model (evaluation, error
/// analysis, serving) build the scorer once and amortize the
/// support-vector flattening across every call.
pub fn predict_pareto_scored(
    scorer: &ModelScorer,
    features: &StaticFeatures,
    clocks: &ClockTable,
    candidates: &[FreqConfig],
) -> ParetoPrediction {
    let (modeled, mem_l) = plan_candidates(scorer, clocks, candidates);
    predict_planned(
        scorer,
        &modeled,
        mem_l.as_ref(),
        candidates.is_empty(),
        features,
    )
}

/// One candidate configuration with everything that does not depend on
/// the kernel precomputed: the scaled clock pair and the model head
/// responsible for its memory domain.
#[derive(Debug, Clone, Copy)]
struct PlannedCandidate {
    config: FreqConfig,
    core_scaled: f64,
    mem_scaled: f64,
    head: usize,
}

impl PlannedCandidate {
    fn new(scorer: &ModelScorer, config: FreqConfig) -> PlannedCandidate {
        PlannedCandidate {
            config,
            core_scaled: config.core_scaled(),
            mem_scaled: config.mem_scaled(),
            head: scorer.head_index(config),
        }
    }
}

/// Split `candidates` into the modeled block (mem above [`MEM_L_MHZ`],
/// per-config metadata precomputed) and the mem-L heuristic point.
fn plan_candidates(
    scorer: &ModelScorer,
    clocks: &ClockTable,
    candidates: &[FreqConfig],
) -> (Vec<PlannedCandidate>, Option<PlannedCandidate>) {
    let modeled = candidates
        .iter()
        .filter(|c| c.mem_mhz > MEM_L_MHZ)
        .map(|&config| PlannedCandidate::new(scorer, config))
        .collect();
    // §4.5: the heuristic point is the last (highest-core) mem-L
    // configuration of the device, independent of the candidate list.
    let mem_l = clocks
        .actual_configs_for(MEM_L_MHZ)
        .into_iter()
        .last()
        .map(|config| PlannedCandidate::new(scorer, config));
    (modeled, mem_l)
}

/// The prediction core over precomputed candidate metadata: one
/// per-kernel invariant hoist (`memory_boundedness`), one scaled
/// feature row per candidate, then a lane-parallel matrix sweep per
/// memory-domain head, Algorithm 1, and the heuristic append.
/// Bit-identical to the historical per-point scalar path (see
/// [`ModelScorer`]).
fn predict_planned(
    scorer: &ModelScorer,
    modeled: &[PlannedCandidate],
    mem_l: Option<&PlannedCandidate>,
    no_candidates: bool,
    features: &StaticFeatures,
) -> ParetoPrediction {
    // An empty candidate list has no prediction at all — not even the
    // mem-L heuristic point, which would otherwise smuggle a
    // configuration into a deliberately empty search space.
    if no_candidates {
        return ParetoPrediction {
            all_points: Vec::new(),
            pareto_set: Vec::new(),
        };
    }
    let boundedness = memory_boundedness(features);
    let score = |c: &PlannedCandidate, heuristic: bool| PredictedPoint {
        config: c.config,
        objectives: scorer.predict_prepared(
            features,
            boundedness,
            c.core_scaled,
            c.mem_scaled,
            c.head,
        ),
        heuristic,
    };
    // Steps 2–8: predict both objectives for every modeled setting.
    // One scaled model-input row per candidate, in candidate order...
    let mut rows = vec![0.0; modeled.len() * NUM_FEATURES];
    for (c, row) in modeled.iter().zip(rows.chunks_exact_mut(NUM_FEATURES)) {
        scorer.write_scaled_row(
            features,
            boundedness,
            c.core_scaled,
            c.mem_scaled,
            row.try_into().expect("row is NUM_FEATURES wide"),
        );
    }
    // ...then one matrix sweep per memory-domain head over the rows it
    // owns (gathered in candidate order, so each candidate's score
    // lands back in its slot with the scalar path's bits).
    let mut objectives = vec![Objectives::new(0.0, 0.0); modeled.len()];
    let mut block = Vec::new();
    let (mut speedup_out, mut energy_out) = (Vec::new(), Vec::new());
    for head in 0..scorer.num_heads() {
        let owned: Vec<usize> = (0..modeled.len())
            .filter(|&i| modeled[i].head == head)
            .collect();
        if owned.is_empty() {
            continue;
        }
        block.clear();
        for &i in &owned {
            block.extend_from_slice(&rows[i * NUM_FEATURES..(i + 1) * NUM_FEATURES]);
        }
        scorer.score_block(head, &block, &mut speedup_out, &mut energy_out);
        for (k, &i) in owned.iter().enumerate() {
            objectives[i] = Objectives::new(speedup_out[k], energy_out[k]);
        }
    }
    let all_points: Vec<PredictedPoint> = modeled
        .iter()
        .zip(&objectives)
        .map(|(c, &objectives)| PredictedPoint {
            config: c.config,
            objectives,
            heuristic: false,
        })
        .collect();
    // Step 9: Algorithm 1 over the predictions.
    let mut pareto_set: Vec<PredictedPoint> = pareto_set_simple(&objectives)
        .into_iter()
        .map(|i| all_points[i])
        .collect();
    // §4.5: append the mem-L heuristic configuration. Its objectives
    // are still model-predicted (there is nothing better available
    // statically), but it is flagged as heuristic.
    if let Some(c) = mem_l {
        pareto_set.push(score(c, true));
    }
    ParetoPrediction {
        all_points,
        pareto_set,
    }
}

/// A fully prepared prediction pipeline for one `(model, device,
/// candidate list)` triple: the batched [`ModelScorer`] plus per-config
/// metadata, both computed once at build/load time. A cache-miss
/// predict then costs one analysis plus one scoring sweep — no
/// per-request support-vector flattening, head lookups, or frequency
/// scaling. [`TrainedPlanner`](crate::TrainedPlanner) builds one at
/// train/load time and reuses it for every request.
#[derive(Debug, Clone)]
pub struct PredictPlan {
    scorer: ModelScorer,
    modeled: Vec<PlannedCandidate>,
    mem_l: Option<PlannedCandidate>,
    no_candidates: bool,
}

impl PredictPlan {
    /// Prepare the pipeline for `model` over an explicit candidate
    /// list (see [`predict_pareto_at`] for the candidate semantics).
    pub fn new(model: &FreqScalingModel, clocks: &ClockTable, candidates: &[FreqConfig]) -> Self {
        let scorer = model.scorer();
        let (modeled, mem_l) = plan_candidates(&scorer, clocks, candidates);
        PredictPlan {
            scorer,
            modeled,
            mem_l,
            no_candidates: candidates.is_empty(),
        }
    }

    /// Prepare the pipeline over every actual configuration of
    /// `clocks` (the production path: what serving sweeps per request).
    pub fn full(model: &FreqScalingModel, clocks: &ClockTable) -> Self {
        PredictPlan::new(model, clocks, &clocks.actual_configs())
    }

    /// Number of modeled candidate configurations in the sweep.
    pub fn num_candidates(&self) -> usize {
        self.modeled.len()
    }

    /// The batched scorer backing this plan (for callers scoring
    /// ad-hoc configurations outside the planned sweep).
    pub fn scorer(&self) -> &ModelScorer {
        &self.scorer
    }

    /// Run the prediction phase for one kernel. Bit-identical to
    /// [`predict_pareto_at`] over the plan's model and candidates.
    pub fn predict(&self, features: &StaticFeatures) -> ParetoPrediction {
        predict_planned(
            &self.scorer,
            &self.modeled,
            self.mem_l.as_ref(),
            self.no_candidates,
            features,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FreqScalingModel, ModelConfig};
    use crate::pipeline::build_training_data;
    use gpufreq_ml::{SvmKernel, SvrParams};
    use gpufreq_sim::GpuSimulator;

    fn fast_config() -> ModelConfig {
        ModelConfig {
            speedup: SvrParams {
                c: 10.0,
                ..SvrParams::paper_speedup()
            },
            energy: SvrParams {
                c: 10.0,
                kernel: SvmKernel::Rbf { gamma: 1.0 },
                ..SvrParams::paper_energy()
            },
        }
    }

    fn setup() -> (FreqScalingModel, GpuSimulator) {
        let sim = GpuSimulator::titan_x();
        let benches: Vec<_> = gpufreq_synth::generate_all()
            .into_iter()
            .step_by(9)
            .collect();
        let data = build_training_data(&sim, &benches, 10);
        (FreqScalingModel::train(&data, &fast_config()), sim)
    }

    #[test]
    fn prediction_covers_modeled_domains_only() {
        let (model, sim) = setup();
        let f = gpufreq_workloads::workload("knn")
            .unwrap()
            .static_features();
        let pred = predict_pareto(&model, &f, &sim.spec().clocks);
        // 71 + 50 + 50 modeled configurations.
        assert_eq!(pred.all_points.len(), 171);
        assert!(pred.all_points.iter().all(|p| p.config.mem_mhz > MEM_L_MHZ));
    }

    #[test]
    fn pareto_set_is_mutually_non_dominating_modulo_heuristic() {
        let (model, sim) = setup();
        let f = gpufreq_workloads::workload("kmeans")
            .unwrap()
            .static_features();
        let pred = predict_pareto(&model, &f, &sim.spec().clocks);
        let modeled: Vec<_> = pred.pareto_set.iter().filter(|p| !p.heuristic).collect();
        for a in &modeled {
            for b in &modeled {
                assert!(!a.objectives.dominates(&b.objectives));
            }
        }
    }

    #[test]
    fn heuristic_point_is_last_mem_l_config() {
        let (model, sim) = setup();
        let f = gpufreq_workloads::workload("mt").unwrap().static_features();
        let pred = predict_pareto(&model, &f, &sim.spec().clocks);
        let heuristic: Vec<_> = pred.pareto_set.iter().filter(|p| p.heuristic).collect();
        assert_eq!(heuristic.len(), 1);
        assert_eq!(heuristic[0].config, FreqConfig::new(405, 405));
    }

    #[test]
    fn extremes_exist_and_are_ordered() {
        let (model, sim) = setup();
        let f = gpufreq_workloads::workload("aes")
            .unwrap()
            .static_features();
        let pred = predict_pareto(&model, &f, &sim.spec().clocks);
        let max_s = pred.max_speedup().unwrap();
        let min_e = pred.min_energy().unwrap();
        assert!(max_s.objectives.speedup >= min_e.objectives.speedup);
        assert!(min_e.objectives.energy <= max_s.objectives.energy);
    }

    #[test]
    fn empty_candidate_list_yields_empty_prediction() {
        let (model, sim) = setup();
        let f = gpufreq_workloads::workload("knn")
            .unwrap()
            .static_features();
        let pred = predict_pareto_at(&model, &f, &sim.spec().clocks, &[]);
        assert!(pred.all_points.is_empty());
        assert!(pred.pareto_set.is_empty());
        assert!(pred.max_speedup().is_none());
        assert!(pred.min_energy().is_none());
    }

    #[test]
    fn extremes_are_nan_safe() {
        // A hand-built prediction with a NaN objective must not panic.
        let nan_point = PredictedPoint {
            config: FreqConfig::new(3505, 1001),
            objectives: Objectives::new(f64::NAN, f64::NAN),
            heuristic: false,
        };
        let good_point = PredictedPoint {
            config: FreqConfig::new(3505, 1102),
            objectives: Objectives::new(1.1, 0.9),
            heuristic: false,
        };
        let pred = ParetoPrediction {
            all_points: vec![nan_point, good_point],
            pareto_set: vec![nan_point, good_point],
        };
        // Non-finite predictions are excluded from both extremes: the
        // finite point wins each, with no panic.
        assert_eq!(pred.max_speedup().unwrap().config, good_point.config);
        assert_eq!(pred.min_energy().unwrap().config, good_point.config);

        // A set with only NaN objectives recommends nothing.
        let all_nan = ParetoPrediction {
            all_points: vec![nan_point],
            pareto_set: vec![nan_point],
        };
        assert!(all_nan.max_speedup().is_none());
        assert!(all_nan.min_energy().is_none());
    }

    #[test]
    fn compact_json_matches_generic_serializer() {
        let (model, sim) = setup();
        let f = gpufreq_workloads::workload("knn")
            .unwrap()
            .static_features();
        let pred = predict_pareto(&model, &f, &sim.spec().clocks);
        assert_eq!(
            pred.to_compact_json(),
            serde_json::to_string(&pred).unwrap()
        );
        // Degenerate and non-finite cases follow the generic writer
        // too: empty arrays, NaN → null, integral floats with `.0`,
        // negative zero.
        let empty = ParetoPrediction {
            all_points: Vec::new(),
            pareto_set: Vec::new(),
        };
        assert_eq!(
            empty.to_compact_json(),
            serde_json::to_string(&empty).unwrap()
        );
        for (s, e) in [
            (f64::NAN, f64::INFINITY),
            (2.0, -0.0),
            (1e20, -1.0e-17),
            (0.1 + 0.2, 1234567890123456.5),
        ] {
            let odd = ParetoPrediction {
                all_points: vec![PredictedPoint {
                    config: FreqConfig::new(3505, 1102),
                    objectives: Objectives::new(s, e),
                    heuristic: false,
                }],
                pareto_set: vec![PredictedPoint {
                    config: FreqConfig::new(405, 405),
                    objectives: Objectives::new(e, s),
                    heuristic: true,
                }],
            };
            assert_eq!(odd.to_compact_json(), serde_json::to_string(&odd).unwrap());
        }
    }

    #[test]
    fn p100_prediction_works_without_mem_l() {
        // The P100 has a single 715 MHz domain: no mem-L, no heuristic.
        let (model, _) = setup();
        let sim = GpuSimulator::tesla_p100();
        let f = gpufreq_workloads::workload("knn")
            .unwrap()
            .static_features();
        let pred = predict_pareto(&model, &f, &sim.spec().clocks);
        assert!(!pred.all_points.is_empty());
        assert!(pred.pareto_set.iter().all(|p| !p.heuristic));
    }
}
