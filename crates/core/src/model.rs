//! The two-headed frequency-scaling model (§3.4).
//!
//! Wraps the paper's pair of regressors — a linear-kernel ε-SVR for
//! speedup and an RBF-kernel ε-SVR for normalized energy — behind one
//! type that maps `(static features, frequency configuration)` to the
//! two predicted objectives.
//!
//! **Reproduction note — per-memory-domain heads.** The paper's entire
//! analysis is stratified by memory domain (Figs. 6–7 group every error
//! by memory clock, §4.2 discusses each domain separately, and §4.5
//! excludes mem-L from modeling altogether). A single regressor across
//! all domains must represent the max-like interaction between the two
//! clocks (a kernel that is compute-bound at mem-H becomes memory-bound
//! at mem-l, flipping which frequency matters), which is outside the
//! capacity of a linear model and empirically costs ~40% RMSE even for
//! OLS on the training set. Training one `(speedup, energy)` pair per
//! memory domain keeps each head exactly in the regime the paper
//! justifies — "speedup increases linearly with the core frequency"
//! *at fixed memory frequency* — and reproduces the paper's error
//! structure. Models are serde-serializable so a trained model can be
//! persisted and reused without re-running the 4240-sample sweep.

use crate::engine::Engine;
use crate::pipeline::TrainingData;
use gpufreq_kernel::{memory_boundedness, FeatureVector, FreqConfig, StaticFeatures, NUM_FEATURES};
use gpufreq_ml::{train_svr, MinMaxScaler, ScoringPlan, SvrModel, SvrParams, TransposedBlock};
use gpufreq_pareto::Objectives;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for training a [`FreqScalingModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// SVR parameters for the speedup heads (paper: linear kernel).
    pub speedup: SvrParams,
    /// SVR parameters for the normalized-energy heads (paper: RBF).
    pub energy: SvrParams,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            speedup: SvrParams::paper_speedup(),
            energy: SvrParams::paper_energy(),
        }
    }
}

impl ModelConfig {
    /// Relaxed hyper-parameters for the fast path (the CLI's `--fast`,
    /// usually paired with [`Corpus::Fast`](crate::Corpus)): a smaller
    /// `C` and a bounded iteration cap trade accuracy for
    /// seconds-scale training.
    pub fn fast() -> ModelConfig {
        ModelConfig {
            speedup: SvrParams {
                c: 100.0,
                max_iter: 200_000,
                ..SvrParams::paper_speedup()
            },
            energy: SvrParams {
                c: 100.0,
                max_iter: 200_000,
                ..SvrParams::paper_energy()
            },
        }
    }

    /// The test-suite preset (`C = 10`, 100k iteration cap): even
    /// looser than [`fast`](ModelConfig::fast), converging in a second
    /// or two on reduced corpora. The determinism, property, and
    /// golden-snapshot suites all train with exactly this config, so a
    /// solver-parameter tweak lands in every suite at once.
    pub fn relaxed() -> ModelConfig {
        ModelConfig {
            speedup: SvrParams {
                c: 10.0,
                max_iter: 100_000,
                ..SvrParams::paper_speedup()
            },
            energy: SvrParams {
                c: 10.0,
                max_iter: 100_000,
                ..SvrParams::paper_energy()
            },
        }
    }
}

/// The per-memory-domain head pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DomainHeads {
    mem_mhz: u32,
    speedup: SvrModel,
    energy: SvrModel,
}

/// A trained frequency-scaling predictor: per-memory-domain speedup and
/// normalized-energy heads sharing one feature scaler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FreqScalingModel {
    domains: Vec<DomainHeads>,
    scaler: MinMaxScaler,
    trained_on: usize,
}

impl FreqScalingModel {
    /// Train the heads on `data` (Fig. 2, steps 5–6), one pair per
    /// memory domain present in the corpus.
    ///
    /// This is the pre-redesign panicking entry point, kept for
    /// backwards compatibility; new code should use [`try_train`]
    /// (or the [`Planner`] façade) and handle the error.
    ///
    /// [`try_train`]: FreqScalingModel::try_train
    /// [`Planner`]: crate::Planner
    ///
    /// # Panics
    /// If `data` is empty or its row configurations are misaligned.
    pub fn train(data: &TrainingData, config: &ModelConfig) -> FreqScalingModel {
        FreqScalingModel::try_train(data, config).expect("valid training data")
    }

    /// Fallible training: an empty corpus or misaligned per-row
    /// configurations are reported as [`Error`](crate::Error) values
    /// instead of panics.
    pub fn try_train(
        data: &TrainingData,
        config: &ModelConfig,
    ) -> Result<FreqScalingModel, crate::Error> {
        FreqScalingModel::try_train_with(&Engine::default(), data, config)
    }

    /// [`try_train`](FreqScalingModel::try_train) with the per-domain
    /// head fits fanned out over `engine`.
    ///
    /// Each `(memory domain, objective)` SVR solve is independent —
    /// a Titan X corpus yields eight of them — so they run as separate
    /// engine work items. Head order (ascending memory clock) and every
    /// solver input are independent of the schedule, so the trained
    /// model is bit-identical for every worker count.
    pub fn try_train_with(
        engine: &Engine,
        data: &TrainingData,
        config: &ModelConfig,
    ) -> Result<FreqScalingModel, crate::Error> {
        if data.is_empty() {
            return Err(crate::Error::EmptyCorpus);
        }
        if data.row_configs.len() != data.len() {
            return Err(crate::Error::MisalignedRows {
                rows: data.len(),
                configs: data.row_configs.len(),
            });
        }
        let scaler = MinMaxScaler::fit(data.speedup.xs());
        let mut mem_clocks: Vec<u32> = data.row_configs.iter().map(|c| c.mem_mhz).collect();
        mem_clocks.sort_unstable();
        mem_clocks.dedup();
        // Assemble the per-domain scaled datasets serially (cheap), then
        // fan the 2-per-domain SVR solves (expensive) out on the engine.
        let slices: Vec<(u32, gpufreq_ml::Dataset, gpufreq_ml::Dataset)> = mem_clocks
            .into_iter()
            .map(|mem_mhz| {
                let mut speedup = gpufreq_ml::Dataset::new();
                let mut energy = gpufreq_ml::Dataset::new();
                for (i, cfg) in data.row_configs.iter().enumerate() {
                    if cfg.mem_mhz == mem_mhz {
                        let (x, ys) = data.speedup.sample(i);
                        speedup.push(scaler.transform(x), ys);
                        let (_, ye) = data.energy.sample(i);
                        energy.push(scaler.transform(x), ye);
                    }
                }
                (mem_mhz, speedup, energy)
            })
            .collect();
        enum Head {
            Speedup(usize),
            Energy(usize),
        }
        let tasks: Vec<Head> = (0..slices.len())
            .flat_map(|i| [Head::Speedup(i), Head::Energy(i)])
            .collect();
        let mut trained: Vec<Option<SvrModel>> = engine
            .map(&tasks, |task| match task {
                Head::Speedup(i) => train_svr(&slices[*i].1, &config.speedup),
                Head::Energy(i) => train_svr(&slices[*i].2, &config.energy),
            })
            .into_iter()
            .map(Some)
            .collect();
        let domains = slices
            .iter()
            .enumerate()
            .map(|(i, (mem_mhz, _, _))| DomainHeads {
                mem_mhz: *mem_mhz,
                speedup: trained[2 * i].take().expect("speedup head trained"),
                energy: trained[2 * i + 1].take().expect("energy head trained"),
            })
            .collect();
        Ok(FreqScalingModel {
            domains,
            scaler,
            trained_on: data.len(),
        })
    }

    /// The head pair responsible for `config` — exact memory-clock
    /// match if the domain was trained, otherwise the nearest domain
    /// (supports cross-device prediction).
    fn heads(&self, config: FreqConfig) -> &DomainHeads {
        self.domains
            .iter()
            .min_by_key(|d| d.mem_mhz.abs_diff(config.mem_mhz))
            .expect("trained model has at least one domain")
    }

    /// Predicted speedup of `features` at `config`.
    pub fn predict_speedup(&self, features: &StaticFeatures, config: FreqConfig) -> f64 {
        let row = FeatureVector::new(features, config);
        self.heads(config)
            .speedup
            .predict(&self.scaler.transform(row.as_slice()))
    }

    /// Predicted normalized energy of `features` at `config`.
    pub fn predict_energy(&self, features: &StaticFeatures, config: FreqConfig) -> f64 {
        let row = FeatureVector::new(features, config);
        self.heads(config)
            .energy
            .predict(&self.scaler.transform(row.as_slice()))
    }

    /// Both objectives at once.
    pub fn predict_objectives(&self, features: &StaticFeatures, config: FreqConfig) -> Objectives {
        Objectives::new(
            self.predict_speedup(features, config),
            self.predict_energy(features, config),
        )
    }

    /// Number of training samples this model saw.
    pub fn trained_on(&self) -> usize {
        self.trained_on
    }

    /// Memory domains this model has heads for, ascending.
    pub fn trained_domains(&self) -> Vec<u32> {
        self.domains.iter().map(|d| d.mem_mhz).collect()
    }

    /// Total support-vector counts across domains `(speedup, energy)`.
    pub fn support_vectors(&self) -> (usize, usize) {
        self.domains.iter().fold((0, 0), |(s, e), d| {
            (
                s + d.speedup.num_support_vectors(),
                e + d.energy.num_support_vectors(),
            )
        })
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<FreqScalingModel, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Build the batched scoring form of this model: one
    /// [`ScoringPlan`] per head with the support vectors flattened, plus
    /// the shared scaler. Built once per trained model (cheap relative
    /// to training, ~a vector copy per head) and then scored without
    /// touching the serde representation again.
    pub fn scorer(&self) -> ModelScorer {
        ModelScorer {
            domains: self
                .domains
                .iter()
                .map(|d| (d.mem_mhz, d.speedup.scoring_plan(), d.energy.scoring_plan()))
                .collect(),
            scaler: self.scaler.clone(),
        }
    }
}

/// The batched scoring form of a [`FreqScalingModel`]: per-domain
/// [`ScoringPlan`]s over flat support-vector matrices and the shared
/// min-max scaler, evaluated through stack buffers instead of one
/// `FeatureVector` + two `Vec` allocations per `(kernel, config)` pair.
///
/// Every entry point is bit-identical to the scalar
/// [`FreqScalingModel::predict_objectives`] path — same feature-row
/// expressions, same scaler arithmetic, same head-selection rule
/// (first minimal `|mem - domain|`, the order heads were trained in),
/// same kernel-evaluation order — which is what lets the hot predict
/// path switch to this form underneath the determinism suite and the
/// golden report without re-blessing anything.
#[derive(Debug, Clone)]
pub struct ModelScorer {
    /// `(mem_mhz, speedup plan, energy plan)` in trained-domain order.
    domains: Vec<(u32, ScoringPlan, ScoringPlan)>,
    scaler: MinMaxScaler,
}

impl ModelScorer {
    /// Index of the head pair responsible for `config`: exact
    /// memory-clock match if trained, else the nearest domain —
    /// replicating [`FreqScalingModel`]'s rule including the tie-break
    /// (first minimal element in trained order).
    pub fn head_index(&self, config: FreqConfig) -> usize {
        self.domains
            .iter()
            .enumerate()
            .min_by_key(|(_, d)| d.0.abs_diff(config.mem_mhz))
            .map(|(i, _)| i)
            .expect("trained model has at least one domain")
    }

    /// Both objectives at `config` — the batched twin of
    /// [`FreqScalingModel::predict_objectives`], bit-identical to it.
    pub fn predict_objectives(&self, features: &StaticFeatures, config: FreqConfig) -> Objectives {
        self.predict_prepared(
            features,
            memory_boundedness(features),
            config.core_scaled(),
            config.mem_scaled(),
            self.head_index(config),
        )
    }

    /// The allocation-free core: score one `(kernel, config)` pair with
    /// the per-kernel invariants (`memory_boundedness`, scaled clocks,
    /// head index) hoisted by the caller. Batched candidate sweeps call
    /// this once per configuration with two stack rows as the only
    /// working state.
    pub fn predict_prepared(
        &self,
        features: &StaticFeatures,
        boundedness: f64,
        core_scaled: f64,
        mem_scaled: f64,
        head: usize,
    ) -> Objectives {
        let mut scaled = [0.0; NUM_FEATURES];
        self.write_scaled_row(features, boundedness, core_scaled, mem_scaled, &mut scaled);
        let (_, speedup, energy) = &self.domains[head];
        Objectives::new(speedup.score(&scaled), energy.score(&scaled))
    }

    /// Number of trained head pairs (memory domains).
    pub fn num_heads(&self) -> usize {
        self.domains.len()
    }

    /// Write the scaled model-input row for one `(kernel, config)` pair
    /// into `out` — the exact row [`predict_prepared`] scores
    /// (raw feature layout, then the min-max scaler), so callers can
    /// assemble candidate blocks for [`score_block`].
    ///
    /// [`predict_prepared`]: ModelScorer::predict_prepared
    /// [`score_block`]: ModelScorer::score_block
    pub fn write_scaled_row(
        &self,
        features: &StaticFeatures,
        boundedness: f64,
        core_scaled: f64,
        mem_scaled: f64,
        out: &mut [f64; NUM_FEATURES],
    ) {
        let mut raw = [0.0; NUM_FEATURES];
        FeatureVector::write_raw(features, core_scaled, mem_scaled, boundedness, &mut raw);
        self.scaler.transform_into(&raw, out);
    }

    /// Score a row-major block of scaled rows (from
    /// [`write_scaled_row`]) with head `head`, filling one speedup and
    /// one energy score per row. The block rides the lane-parallel
    /// [`ScoringPlan::score_block_into`] sweep; every row's bits match
    /// [`predict_prepared`] on that row.
    ///
    /// [`write_scaled_row`]: ModelScorer::write_scaled_row
    /// [`predict_prepared`]: ModelScorer::predict_prepared
    pub fn score_block(
        &self,
        head: usize,
        block: &[f64],
        speedup_out: &mut Vec<f64>,
        energy_out: &mut Vec<f64>,
    ) {
        let n = block.len() / NUM_FEATURES;
        let (_, speedup, energy) = &self.domains[head];
        // Both heads consume the same candidates: transpose once, sweep
        // twice. A head trained with zero support vectors has a width-0
        // plan that cannot consume the block: every row scores as the
        // bias, exactly like the scalar path.
        let mut transposed = None;
        for (plan, out) in [(speedup, speedup_out), (energy, energy_out)] {
            if plan.dims() == 0 {
                out.clear();
                out.resize(n, plan.score(&[]));
            } else {
                let transposed =
                    transposed.get_or_insert_with(|| TransposedBlock::new(block, NUM_FEATURES));
                plan.score_transposed_into(transposed, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::build_training_data;
    use gpufreq_sim::GpuSimulator;

    /// Fast hyper-parameters for tests: smaller C converges quickly and
    /// is accurate enough to validate plumbing.
    pub(crate) fn fast_config() -> ModelConfig {
        ModelConfig {
            speedup: SvrParams {
                c: 100.0,
                ..SvrParams::paper_speedup()
            },
            energy: SvrParams {
                c: 100.0,
                ..SvrParams::paper_energy()
            },
        }
    }

    fn tiny_model() -> (FreqScalingModel, GpuSimulator) {
        let sim = GpuSimulator::titan_x();
        let benches: Vec<_> = gpufreq_synth::generate_all()
            .into_iter()
            .step_by(4)
            .collect();
        // Per-domain heads need enough settings inside every domain.
        let data = build_training_data(&sim, &benches, 24);
        (FreqScalingModel::train(&data, &fast_config()), sim)
    }

    #[test]
    fn one_head_pair_per_memory_domain() {
        let (model, _) = tiny_model();
        assert_eq!(model.trained_domains(), vec![405, 810, 3304, 3505]);
    }

    #[test]
    fn model_learns_core_clock_speedup_trend() {
        let (model, sim) = tiny_model();
        // A compute-heavy kernel must be predicted faster at higher core
        // clocks within the same memory domain.
        let w = gpufreq_workloads::workload("knn").unwrap();
        let f = w.static_features();
        let slow = model.predict_speedup(&f, gpufreq_kernel::FreqConfig::new(3505, 435));
        let fast = model.predict_speedup(&f, sim.spec().clocks.default);
        assert!(fast > slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn predictions_are_near_unity_at_default() {
        let (model, sim) = tiny_model();
        let default = sim.spec().clocks.default;
        for name in ["knn", "mt", "blackscholes"] {
            let f = gpufreq_workloads::workload(name).unwrap().static_features();
            let s = model.predict_speedup(&f, default);
            let e = model.predict_energy(&f, default);
            assert!((0.7..1.3).contains(&s), "{name} speedup at default {s}");
            assert!((0.7..1.3).contains(&e), "{name} energy at default {e}");
        }
    }

    #[test]
    fn unseen_memory_clock_uses_nearest_domain() {
        let (model, _) = tiny_model();
        let f = gpufreq_workloads::workload("knn")
            .unwrap()
            .static_features();
        // 715 MHz (a P100 clock) falls back to the 810 MHz head.
        let via_nearest = model.predict_speedup(&f, gpufreq_kernel::FreqConfig::new(715, 810));
        let at_810 = model.predict_speedup(&f, gpufreq_kernel::FreqConfig::new(810, 810));
        // Not identical (the f_mem feature differs) but produced by the
        // same head without panicking.
        assert!(via_nearest.is_finite());
        assert!((via_nearest - at_810).abs() < 0.5);
    }

    #[test]
    fn try_train_rejects_malformed_corpora() {
        let empty = TrainingData {
            speedup: gpufreq_ml::Dataset::new(),
            energy: gpufreq_ml::Dataset::new(),
            configs: Vec::new(),
            row_configs: Vec::new(),
            num_benchmarks: 0,
        };
        let err = FreqScalingModel::try_train(&empty, &fast_config()).unwrap_err();
        assert!(matches!(err, crate::Error::EmptyCorpus), "{err}");

        let sim = GpuSimulator::titan_x();
        let benches: Vec<_> = gpufreq_synth::generate_all().into_iter().take(2).collect();
        let mut misaligned = build_training_data(&sim, &benches, 4);
        misaligned.row_configs.pop();
        let err = FreqScalingModel::try_train(&misaligned, &fast_config()).unwrap_err();
        assert!(
            matches!(
                err,
                crate::Error::MisalignedRows {
                    rows: 8,
                    configs: 7
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn parallel_head_training_matches_serial() {
        let sim = GpuSimulator::titan_x();
        let benches: Vec<_> = gpufreq_synth::generate_all()
            .into_iter()
            .step_by(9)
            .collect();
        let data = build_training_data(&sim, &benches, 16);
        let serial =
            FreqScalingModel::try_train_with(&Engine::serial(), &data, &fast_config()).unwrap();
        for jobs in [2, 8] {
            let parallel =
                FreqScalingModel::try_train_with(&Engine::new(Some(jobs)), &data, &fast_config())
                    .unwrap();
            assert_eq!(parallel, serial, "jobs = {jobs}");
            assert_eq!(parallel.to_json(), serial.to_json());
        }
    }

    #[test]
    fn json_round_trip() {
        let (model, _) = tiny_model();
        let json = model.to_json();
        let back = FreqScalingModel::from_json(&json).unwrap();
        assert_eq!(model, back);
        let f = gpufreq_workloads::workload("aes")
            .unwrap()
            .static_features();
        let cfg = gpufreq_kernel::FreqConfig::new(3505, 1001);
        assert_eq!(
            model.predict_objectives(&f, cfg),
            back.predict_objectives(&f, cfg)
        );
    }

    #[test]
    fn support_vectors_reported() {
        let (model, _) = tiny_model();
        let (s, e) = model.support_vectors();
        assert!(s > 0 && e > 0);
        assert!(model.trained_on() > 0);
    }
}
