//! Rendering of experiment output: ASCII tables, CSV and JSON series.
//!
//! The experiment binaries in `gpufreq-bench` print the same rows and
//! series the paper reports; this module holds the shared formatting so
//! the output of every figure/table binary is consistent and diffable.

use crate::evaluate::{DomainErrorAnalysis, Table2Row};
use gpufreq_pareto::Objectives;
use std::fmt::Write as _;

/// Render a generic ASCII table with a header row.
///
/// Column widths adapt to the content; all columns are left-aligned
/// except those whose every body cell parses as a number, which are
/// right-aligned.
pub fn ascii_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    assert!(rows.iter().all(|r| r.len() == cols), "ragged table rows");
    // Width in chars, not bytes: `format!` pads by char count, so
    // byte-based widths would misalign any non-ASCII cell (§, ≥, —).
    let width = |s: &str| s.chars().count();
    let mut widths: Vec<usize> = header.iter().map(|h| width(h)).collect();
    for row in rows {
        for (j, cell) in row.iter().enumerate() {
            widths[j] = widths[j].max(width(cell));
        }
    }
    let numeric: Vec<bool> = (0..cols)
        .map(|j| !rows.is_empty() && rows.iter().all(|r| r[j].trim().parse::<f64>().is_ok()))
        .collect();
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+{}", "-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (j, h) in header.iter().enumerate() {
        let _ = write!(out, "| {:<w$} ", h, w = widths[j]);
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (j, cell) in row.iter().enumerate() {
            if numeric[j] {
                let _ = write!(out, "| {:>w$} ", cell, w = widths[j]);
            } else {
                let _ = write!(out, "| {:<w$} ", cell, w = widths[j]);
            }
        }
        out.push_str("|\n");
    }
    // No body: the border after the header already closes the table; a
    // second one would render as a doubled rule.
    if !rows.is_empty() {
        sep(&mut out);
    }
    out
}

/// Render Table 2 in the paper's layout.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let header = [
        "Benchmark",
        "D(P*,P')",
        "|P'|",
        "|P*|",
        "max speedup (ds, de)",
        "min energy (ds, de)",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                format!("{:.4}", r.coverage_d),
                r.predicted_points.to_string(),
                r.real_points.to_string(),
                format!(
                    "({:.3}, {:.3})",
                    r.max_speedup_dist.d_speedup, r.max_speedup_dist.d_energy
                ),
                format!(
                    "({:.3}, {:.3})",
                    r.min_energy_dist.d_speedup, r.min_energy_dist.d_energy
                ),
            ]
        })
        .collect();
    ascii_table(&header, &body)
}

/// Render one Fig. 6 / Fig. 7 panel: per-benchmark box statistics for a
/// memory domain plus the pooled RMSE caption.
pub fn render_error_panel(domain: &DomainErrorAnalysis, objective_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Memory Frequency: {} MHz ({})  —  {}  —  RMSE = {:.2}%",
        domain.mem_mhz, domain.label, objective_name, domain.rmse_percent
    );
    let header = ["Benchmark", "min%", "q25%", "median%", "q75%", "max%"];
    let body: Vec<Vec<String>> = domain
        .per_benchmark
        .iter()
        .map(|b| {
            vec![
                b.name.clone(),
                format!("{:.2}", b.stats.min),
                format!("{:.2}", b.stats.q25),
                format!("{:.2}", b.stats.median),
                format!("{:.2}", b.stats.q75),
                format!("{:.2}", b.stats.max),
            ]
        })
        .collect();
    out.push_str(&ascii_table(&header, &body));
    out
}

/// Serialize Table 2 as CSV — the golden-test representation: fixed
/// six-decimal formatting, one row per benchmark in the given order, so
/// two runs that agree numerically produce byte-identical files.
pub fn table2_csv(rows: &[Table2Row]) -> String {
    let mut out = String::from(
        "benchmark,coverage_d,predicted_points,real_points,\
         max_speedup_ds,max_speedup_de,min_energy_ds,min_energy_de\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{:.6},{},{},{:.6},{:.6},{:.6},{:.6}",
            csv_field(&r.benchmark),
            r.coverage_d,
            r.predicted_points,
            r.real_points,
            r.max_speedup_dist.d_speedup,
            r.max_speedup_dist.d_energy,
            r.min_energy_dist.d_speedup,
            r.min_energy_dist.d_energy,
        );
    }
    out
}

/// Escape a cell for use inside a GitHub-flavored Markdown table:
/// `|` would end the cell and a newline would end the row, so both are
/// replaced (`\|` and `<br>`).
pub fn markdown_escape(cell: &str) -> String {
    cell.replace('|', "\\|").replace('\n', "<br>")
}

/// Render a GitHub-flavored Markdown table with a header row.
///
/// Columns whose every body cell parses as a number are right-aligned
/// via the `---:` separator syntax, mirroring [`ascii_table`]. Cells
/// are escaped with [`markdown_escape`]; an empty `rows` slice renders
/// just the header and separator, which GitHub displays as an empty
/// table.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    assert!(rows.iter().all(|r| r.len() == cols), "ragged table rows");
    let numeric: Vec<bool> = (0..cols)
        .map(|j| !rows.is_empty() && rows.iter().all(|r| r[j].trim().parse::<f64>().is_ok()))
        .collect();
    let mut out = String::from("|");
    for h in header {
        let _ = write!(out, " {} |", markdown_escape(h));
    }
    out.push_str("\n|");
    for &n in &numeric {
        out.push_str(if n { " ---: |" } else { " --- |" });
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            let _ = write!(out, " {} |", markdown_escape(cell));
        }
        out.push('\n');
    }
    out
}

/// Quote a CSV field per RFC 4180 when it needs it: a field containing
/// a comma, a double quote, or a line break is wrapped in double quotes
/// with embedded quotes doubled; anything else passes through
/// unchanged.
pub fn csv_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialize an `(x, y)` series as CSV with a header line.
pub fn series_csv(header: (&str, &str), points: &[(f64, f64)]) -> String {
    let mut out = format!("{},{}\n", header.0, header.1);
    for (x, y) in points {
        let _ = writeln!(out, "{x},{y}");
    }
    out
}

/// Serialize an objective-space point set as CSV
/// (`speedup,normalized_energy` columns).
pub fn objectives_csv(points: &[Objectives]) -> String {
    let mut out = String::from("speedup,normalized_energy\n");
    for p in points {
        let _ = writeln!(out, "{},{}", p.speedup, p.energy);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_ml::BoxStats;
    use gpufreq_pareto::ExtremeDistance;

    #[test]
    fn ascii_table_is_aligned() {
        let t = ascii_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1.5".to_string()],
                vec!["long-name".to_string(), "22.25".to_string()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        // Borders + header + 2 rows.
        assert_eq!(lines.len(), 6);
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged output:\n{t}"
        );
        // Numeric column right-aligned.
        assert!(lines[3].contains("|   1.5 |"));
    }

    #[test]
    #[should_panic(expected = "ragged table rows")]
    fn ragged_rows_panic() {
        ascii_table(&["a", "b"], &[vec!["x".to_string()]]);
    }

    #[test]
    fn table2_renders_all_rows() {
        let rows = vec![Table2Row {
            benchmark: "PerlinNoise".to_string(),
            coverage_d: 0.0059,
            predicted_points: 12,
            real_points: 10,
            max_speedup_dist: ExtremeDistance {
                d_speedup: 0.0,
                d_energy: 0.0,
            },
            min_energy_dist: ExtremeDistance {
                d_speedup: 0.009,
                d_energy: 0.008,
            },
        }];
        let t = render_table2(&rows);
        assert!(t.contains("PerlinNoise"));
        assert!(t.contains("0.0059"));
        assert!(t.contains("(0.009, 0.008)"));
    }

    #[test]
    fn error_panel_includes_rmse() {
        let d = DomainErrorAnalysis {
            mem_mhz: 3505,
            label: "Mem_H".to_string(),
            per_benchmark: vec![crate::evaluate::BenchmarkErrors {
                name: "k-NN".to_string(),
                stats: BoxStats::from_values(&[-5.0, -1.0, 0.0, 2.0, 6.0]),
            }],
            rmse_percent: 6.68,
        };
        let s = render_error_panel(&d, "speedup");
        assert!(s.contains("RMSE = 6.68%"));
        assert!(s.contains("k-NN"));
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = series_csv(("core_mhz", "speedup"), &[(135.0, 0.4), (1001.0, 1.0)]);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("core_mhz,speedup\n"));
        let ocsv = objectives_csv(&[Objectives::new(1.0, 1.0)]);
        assert_eq!(ocsv.lines().count(), 2);
    }
}
