//! Cross-validation over the synthetic corpus.
//!
//! The paper validates on twelve external benchmarks; this module adds
//! the complementary internal check: leave-one-pattern-out (LOPO)
//! cross-validation on the micro-benchmark corpus itself. Holding out
//! an entire pattern family (all nine intensities of `b-int-add`, say)
//! measures how well the model extrapolates to *kinds* of code it
//! never saw — a much stronger test than a random split, and the right
//! granularity because codes within a family are nearly collinear.

use crate::engine::Engine;
use crate::model::{FreqScalingModel, ModelConfig};
use crate::pipeline::{build_training_data_with, TrainingData};
use gpufreq_kernel::FeatureVector;
use gpufreq_ml::rmse_percent;
use gpufreq_sim::GpuSimulator;
use gpufreq_synth::MicroBenchmark;
use serde::{Deserialize, Serialize};

/// Per-fold result of a leave-one-group-out run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoldResult {
    /// Name of the held-out group (pattern prefix).
    pub group: String,
    /// Number of held-out samples.
    pub samples: usize,
    /// Speedup RMSE% on the held-out group.
    pub speedup_rmse_percent: f64,
    /// Normalized-energy RMSE% on the held-out group.
    pub energy_rmse_percent: f64,
}

/// Summary of a full cross-validation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidation {
    /// One result per fold, in fold order.
    pub folds: Vec<FoldResult>,
}

impl CrossValidation {
    /// Sample-weighted mean speedup RMSE% across folds.
    pub fn mean_speedup_rmse(&self) -> f64 {
        weighted_mean(
            self.folds
                .iter()
                .map(|f| (f.speedup_rmse_percent, f.samples)),
        )
    }

    /// Sample-weighted mean energy RMSE% across folds.
    pub fn mean_energy_rmse(&self) -> f64 {
        weighted_mean(
            self.folds
                .iter()
                .map(|f| (f.energy_rmse_percent, f.samples)),
        )
    }

    /// The hardest fold by speedup error.
    pub fn worst_fold(&self) -> Option<&FoldResult> {
        self.folds
            .iter()
            .max_by(|a, b| a.speedup_rmse_percent.total_cmp(&b.speedup_rmse_percent))
    }
}

fn weighted_mean(items: impl Iterator<Item = (f64, usize)>) -> f64 {
    let (mut acc, mut n) = (0.0, 0usize);
    for (v, w) in items {
        acc += v * v * w as f64; // RMS-combine
        n += w;
    }
    if n == 0 {
        0.0
    } else {
        (acc / n as f64).sqrt()
    }
}

/// The group (fold) a benchmark belongs to: its pattern family
/// (`b-int-add`, `b-mix`, `b-ext`, ...).
pub fn group_of(benchmark_name: &str) -> String {
    // Strip a trailing `-<number>` intensity suffix if present.
    match benchmark_name.rsplit_once('-') {
        Some((prefix, tail)) if tail.chars().all(|c| c.is_ascii_digit()) => prefix.to_string(),
        _ => benchmark_name.to_string(),
    }
}

/// Run leave-one-group-out cross-validation of the full pipeline:
/// for every pattern family, train on the rest of `corpus` and score
/// the held-out family.
///
/// `settings_per_benchmark` controls the sweep size (40 = paper scale).
pub fn leave_one_pattern_out(
    sim: &GpuSimulator,
    corpus: &[MicroBenchmark],
    settings_per_benchmark: usize,
    config: &ModelConfig,
) -> CrossValidation {
    leave_one_pattern_out_with(
        &Engine::default(),
        sim,
        corpus,
        settings_per_benchmark,
        config,
    )
}

/// [`leave_one_pattern_out`] with whole folds (train on the rest,
/// score the held-out family) fanned out over `engine`.
///
/// Folds are independent full pipeline runs and come back in sorted
/// group order, so the cross-validation summary is bit-identical for
/// every worker count (pinned by `tests/determinism.rs`). Each fold's
/// internal sweeps and head fits run serially when the engine fans out
/// ([`Engine::inner`]) — fold-level parallelism already fills the
/// machine.
pub fn leave_one_pattern_out_with(
    engine: &Engine,
    sim: &GpuSimulator,
    corpus: &[MicroBenchmark],
    settings_per_benchmark: usize,
    config: &ModelConfig,
) -> CrossValidation {
    let mut groups: Vec<String> = corpus.iter().map(|b| group_of(&b.name)).collect();
    groups.sort();
    groups.dedup();
    let inner = engine.inner(groups.len());
    let inner_sim = sim.clone().with_jobs(inner.jobs());
    let folds = engine.map(&groups, |group| {
        let train_set: Vec<MicroBenchmark> = corpus
            .iter()
            .filter(|b| group_of(&b.name) != *group)
            .cloned()
            .collect();
        let held_out: Vec<MicroBenchmark> = corpus
            .iter()
            .filter(|b| group_of(&b.name) == *group)
            .cloned()
            .collect();
        let data = build_training_data_with(&inner, &inner_sim, &train_set, settings_per_benchmark);
        let model = FreqScalingModel::try_train_with(&inner, &data, config)
            .expect("cross-validation fold has samples");
        score_fold(
            &inner,
            &inner_sim,
            &model,
            group,
            &held_out,
            settings_per_benchmark,
        )
    });
    CrossValidation { folds }
}

fn score_fold(
    engine: &Engine,
    sim: &GpuSimulator,
    model: &FreqScalingModel,
    group: &str,
    held_out: &[MicroBenchmark],
    settings: usize,
) -> FoldResult {
    let truth: TrainingData = build_training_data_with(engine, sim, held_out, settings);
    // One scoring plan for the whole held-out sweep.
    let scorer = model.scorer();
    let mut pred_speedup = Vec::with_capacity(truth.len());
    let mut pred_energy = Vec::with_capacity(truth.len());
    for (i, cfg) in truth.row_configs.iter().enumerate() {
        // Recover the benchmark's static features from the stored row:
        // the first NUM_STATIC_FEATURES components are the raw shares.
        let (row, _) = truth.speedup.sample(i);
        let features = gpufreq_kernel::StaticFeatures::from_values(
            row[..gpufreq_kernel::NUM_STATIC_FEATURES]
                .try_into()
                .expect("row wide enough"),
        );
        debug_assert_eq!(
            FeatureVector::new(&features, *cfg).as_slice()[..row.len()],
            row[..]
        );
        let o = scorer.predict_objectives(&features, *cfg);
        pred_speedup.push(o.speedup);
        pred_energy.push(o.energy);
    }
    FoldResult {
        group: group.to_string(),
        samples: truth.len(),
        speedup_rmse_percent: rmse_percent(truth.speedup.ys(), &pred_speedup),
        energy_rmse_percent: rmse_percent(truth.energy.ys(), &pred_energy),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_ml::SvrParams;

    fn fast_config() -> ModelConfig {
        ModelConfig {
            speedup: SvrParams {
                c: 50.0,
                max_iter: 100_000,
                ..SvrParams::paper_speedup()
            },
            energy: SvrParams {
                c: 50.0,
                max_iter: 100_000,
                ..SvrParams::paper_energy()
            },
        }
    }

    #[test]
    fn group_names_strip_intensity() {
        assert_eq!(group_of("b-int-add-256"), "b-int-add");
        assert_eq!(group_of("b-sf-1"), "b-sf");
        assert_eq!(group_of("b-mix-stream"), "b-mix-stream");
        assert_eq!(group_of("b-ext-17"), "b-ext");
    }

    #[test]
    fn lopo_runs_on_a_small_corpus() {
        let sim = GpuSimulator::titan_x();
        // Three pattern families, three intensities each.
        let corpus: Vec<MicroBenchmark> = gpufreq_synth::generate_all()
            .into_iter()
            .filter(|b| {
                ["b-int-add-", "b-float-mul-", "b-gl-access-"]
                    .iter()
                    .any(|p| b.name.starts_with(p))
            })
            .filter(|b| {
                b.name.ends_with("-4") || b.name.ends_with("-32") || b.name.ends_with("-256")
            })
            .collect();
        assert_eq!(corpus.len(), 9);
        let cv = leave_one_pattern_out(&sim, &corpus, 12, &fast_config());
        assert_eq!(cv.folds.len(), 3);
        for fold in &cv.folds {
            assert_eq!(fold.samples, 3 * 12);
            assert!(fold.speedup_rmse_percent.is_finite());
            assert!(fold.energy_rmse_percent.is_finite());
        }
        assert!(cv.mean_speedup_rmse() > 0.0);
        assert!(cv.worst_fold().is_some());
    }

    #[test]
    fn weighted_mean_is_rms() {
        let cv = CrossValidation {
            folds: vec![
                FoldResult {
                    group: "a".into(),
                    samples: 1,
                    speedup_rmse_percent: 3.0,
                    energy_rmse_percent: 0.0,
                },
                FoldResult {
                    group: "b".into(),
                    samples: 1,
                    speedup_rmse_percent: 4.0,
                    energy_rmse_percent: 0.0,
                },
            ],
        };
        let want = ((9.0 + 16.0) / 2.0f64).sqrt();
        assert!((cv.mean_speedup_rmse() - want).abs() < 1e-12);
    }
}
