//! Micro-benchmark explorer: inspect the 106 synthetic training codes
//! of §3.3 — their generated sources, static feature vectors, and how
//! intensity sweeps move each pattern from memory- to compute-bound on
//! the simulator.
//!
//! ```sh
//! cargo run --release --example microbench_explorer            # summary table
//! cargo run --release --example microbench_explorer -- b-sf-64 # one benchmark
//! ```

use gpufreq::prelude::*;
use gpufreq_sim::{execution_time, KernelDemand};

fn main() {
    let benches = gpufreq::synth::generate_all();
    if let Some(name) = std::env::args().nth(1) {
        let Some(b) = benches.iter().find(|b| b.name == name) else {
            eprintln!(
                "unknown micro-benchmark `{name}` (there are {})",
                benches.len()
            );
            std::process::exit(1);
        };
        println!("=== {} ===\n", b.name);
        println!("{}", b.source);
        let f = b.static_features();
        println!("static features:");
        for (fname, value) in gpufreq::kernel::STATIC_FEATURE_NAMES.iter().zip(f.values()) {
            if *value > 0.0 {
                println!("  {fname:<10} {value:.3}");
            }
        }
        return;
    }

    let sim = Device::TitanX.simulator();
    let default = sim.spec().clocks.default;
    println!(
        "the {} synthetic training micro-benchmarks (paper §3.3):\n",
        benches.len()
    );
    println!(
        "{:<22} {:>9} {:>10} {:>12} {:>10}",
        "name", "instrs", "bytes/item", "bound", "dominant"
    );
    for b in &benches {
        let profile = b.profile();
        let demand = KernelDemand::from_profile(sim.spec(), &profile);
        let timing = execution_time(sim.spec(), &demand, default);
        let f = b.static_features();
        let (dom_idx, _) = f
            .values()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        println!(
            "{:<22} {:>9.0} {:>10.0} {:>12} {:>10}",
            b.name,
            profile.counts.total(),
            profile.global_read_bytes + profile.global_write_bytes,
            if timing.is_memory_bound() {
                "memory"
            } else {
                "compute"
            },
            gpufreq::kernel::STATIC_FEATURE_NAMES[dom_idx],
        );
    }
    println!("\npass a benchmark name to print its source and features");
}
