//! Quickstart: train a small model and predict the Pareto-optimal
//! frequency settings of a kernel you provide as source text.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Uses a reduced training corpus (every 3rd micro-benchmark, 20
//! frequency settings) so the whole example runs in seconds; the
//! experiment binaries in `gpufreq-bench` use the full paper-scale
//! corpus.

use gpufreq::prelude::*;

fn main() {
    // --- 1. The device (a simulated GTX Titan X). ---------------------
    let sim = GpuSimulator::titan_x();
    println!(
        "device: {} — {} supported configurations, default {}",
        sim.spec().name,
        sim.spec().clocks.actual_configs().len(),
        sim.spec().clocks.default
    );

    // --- 2. Training phase (Fig. 2), reduced for speed. ---------------
    let corpus: Vec<_> = gpufreq::synth::generate_all()
        .into_iter()
        .step_by(3)
        .collect();
    println!(
        "training on {} micro-benchmarks x 20 frequency settings...",
        corpus.len()
    );
    let data = build_training_data(&sim, &corpus, 20);
    let model = FreqScalingModel::train(
        &data,
        &ModelConfig {
            speedup: SvrParams {
                c: 100.0,
                ..SvrParams::paper_speedup()
            },
            energy: SvrParams {
                c: 100.0,
                ..SvrParams::paper_energy()
            },
        },
    );
    println!("trained on {} samples\n", model.trained_on());

    // --- 3. A brand-new kernel, never executed. ------------------------
    let source = r#"
        __kernel void saxpy_pow(__global float* x, __global float* y, float a) {
            uint i = get_global_id(0);
            float acc = 0.0f;
            for (int it = 0; it < 64; it += 1) {
                acc = acc + a * x[i] - acc * 0.25f;
                acc = acc + sqrt(acc * acc + 1.0f);
            }
            y[i] = acc;
        }
    "#;
    let program = parse(source).expect("kernel parses");
    let analysis = analyze_kernel(program.first_kernel().unwrap()).expect("kernel analyzes");
    let features = StaticFeatures::from_analysis(&analysis);
    println!("static features of `saxpy_pow`:");
    for (name, value) in gpufreq::kernel::STATIC_FEATURE_NAMES
        .iter()
        .zip(features.values())
    {
        if *value > 0.0 {
            println!("  {name:<10} {value:.3}");
        }
    }

    // --- 4. Prediction phase (Fig. 3). ---------------------------------
    let prediction = predict_pareto(&model, &features, &sim.spec().clocks);
    println!("\npredicted Pareto-optimal frequency settings:");
    for point in &prediction.pareto_set {
        println!(
            "  {}  -> speedup {:.3}, normalized energy {:.3}{}",
            point.config,
            point.objectives.speedup,
            point.objectives.energy,
            if point.heuristic {
                "  [mem-L heuristic]"
            } else {
                ""
            }
        );
    }
    let best_perf = prediction.max_speedup().expect("non-empty set");
    let best_energy = prediction.min_energy().expect("non-empty set");
    println!("\nfor maximum performance: apply {}", best_perf.config);
    println!("for minimum energy:      apply {}", best_energy.config);
}
