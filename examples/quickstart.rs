//! Quickstart: train a small model through the [`Planner`] façade and
//! predict the Pareto-optimal frequency settings of a kernel you
//! provide as source text.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Uses the reduced training corpus ([`Corpus::Fast`], 20 frequency
//! settings) so the whole example runs in seconds; the experiment
//! binaries in `gpufreq-bench` use the full paper-scale corpus.
//!
//! Every step returns a `Result` — malformed kernels, empty corpora
//! and corrupt model artifacts are typed [`Error`] values, so `main`
//! can simply use `?`.

use gpufreq::prelude::*;

fn main() -> Result<(), Error> {
    // --- 1. Train through the facade (Fig. 2), reduced for speed. -----
    let planner = Planner::builder()
        .device(Device::TitanX)
        .corpus(Corpus::Fast)
        .settings(20)
        .model_config(ModelConfig::fast())
        .train()?;
    let sim = planner.simulator();
    println!(
        "device: {} — {} supported configurations, default {}",
        sim.spec().name,
        sim.spec().clocks.actual_configs().len(),
        sim.spec().clocks.default
    );
    println!("trained on {} samples\n", planner.model().trained_on());

    // --- 2. A brand-new kernel, never executed. ------------------------
    let source = r#"
        __kernel void saxpy_pow(__global float* x, __global float* y, float a) {
            uint i = get_global_id(0);
            float acc = 0.0f;
            for (int it = 0; it < 64; it += 1) {
                acc = acc + a * x[i] - acc * 0.25f;
                acc = acc + sqrt(acc * acc + 1.0f);
            }
            y[i] = acc;
        }
    "#;
    let (features, _) = gpufreq::core::analyze_source(source, None)?;
    println!("static features of `saxpy_pow`:");
    for (name, value) in gpufreq::kernel::STATIC_FEATURE_NAMES
        .iter()
        .zip(features.values())
    {
        if *value > 0.0 {
            println!("  {name:<10} {value:.3}");
        }
    }

    // --- 3. Prediction phase (Fig. 3). ---------------------------------
    let prediction = planner.predict(&features)?;
    println!("\npredicted Pareto-optimal frequency settings:");
    for point in &prediction.pareto_set {
        println!(
            "  {}  -> speedup {:.3}, normalized energy {:.3}{}",
            point.config,
            point.objectives.speedup,
            point.objectives.energy,
            if point.heuristic {
                "  [mem-L heuristic]"
            } else {
                ""
            }
        );
    }
    if let (Some(best_perf), Some(best_energy)) =
        (prediction.max_speedup(), prediction.min_energy())
    {
        println!("\nfor maximum performance: apply {}", best_perf.config);
        println!("for minimum energy:      apply {}", best_energy.config);
    }
    Ok(())
}
