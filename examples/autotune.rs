//! Autotune: pick the best frequency configuration for a kernel source
//! file under a user-chosen energy/performance trade-off, then verify
//! the choice against the simulator's ground truth.
//!
//! ```sh
//! cargo run --release --example autotune -- path/to/kernel.cl 0.5
//! ```
//!
//! The second argument is the trade-off weight `w ∈ [0, 1]`: 0 = only
//! energy matters, 1 = only performance. Run without arguments to
//! autotune the built-in matrix-multiply benchmark at `w = 0.5`.

use gpufreq::prelude::*;
use gpufreq_kernel::{AnalysisConfig, KernelProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let weight: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.5);
    assert!(
        (0.0..=1.0).contains(&weight),
        "trade-off weight must be in [0, 1]"
    );

    // --- Load the kernel. ----------------------------------------------
    let (name, source, launch) = match args.get(1) {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            (path.clone(), text, LaunchConfig::default())
        }
        None => {
            let w = workload("matmul").expect("matmul is a built-in benchmark");
            (w.display_name.to_string(), w.source.clone(), w.launch)
        }
    };
    let program = parse(&source)?;
    let kernel = program.first_kernel().ok_or("no __kernel function found")?;
    let profile = KernelProfile::from_kernel(kernel, &AnalysisConfig::default(), launch)?;
    let features = profile.static_features();
    println!("autotuning `{name}` (trade-off weight {weight}: 0=energy, 1=performance)\n");

    // --- Train through the facade (reduced corpus for example speed). ----
    let planner = Planner::builder()
        .device(Device::TitanX)
        .corpus(Corpus::Fast)
        .settings(20)
        .model_config(ModelConfig::fast())
        .train()?;
    let sim = planner.simulator();

    // --- Predict the Pareto set and scalarize. ---------------------------
    let prediction = planner.predict(&features)?;
    let choice = prediction
        .pareto_set
        .iter()
        .filter(|p| !p.heuristic)
        .max_by(|a, b| {
            let score =
                |o: &gpufreq::pareto::Objectives| weight * o.speedup - (1.0 - weight) * o.energy;
            score(&a.objectives).total_cmp(&score(&b.objectives))
        })
        .ok_or("empty Pareto set")?;
    println!(
        "chosen configuration: {} (predicted speedup {:.3}, energy {:.3})",
        choice.config, choice.objectives.speedup, choice.objectives.energy
    );

    // --- Verify against ground truth. ------------------------------------
    let baseline = sim.run_default(&profile);
    let tuned = sim.run(&profile, choice.config)?;
    let speedup = baseline.time_ms / tuned.time_ms;
    let energy = tuned.energy_j / baseline.energy_j;
    println!("\nmeasured on the simulator:");
    println!(
        "  default {}: {:.3} ms, {:.3} J",
        sim.spec().clocks.default,
        baseline.time_ms,
        baseline.energy_j
    );
    println!(
        "  tuned   {}: {:.3} ms, {:.3} J",
        tuned.config, tuned.time_ms, tuned.energy_j
    );
    println!("  actual speedup {speedup:.3}, actual normalized energy {energy:.3}");
    if speedup >= 1.0 && energy <= 1.0 {
        println!("  -> dominates the default configuration");
    } else if energy < 1.0 {
        println!(
            "  -> saves {:.1}% energy at {:.1}% of default speed",
            (1.0 - energy) * 100.0,
            speedup * 100.0
        );
    } else {
        println!(
            "  -> {:.1}% faster at {:.1}% of default energy",
            (speedup - 1.0) * 100.0,
            energy * 100.0
        );
    }
    Ok(())
}
