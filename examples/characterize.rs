//! Characterize: sweep one of the twelve test benchmarks over every
//! supported frequency configuration and print its measured
//! energy/performance landscape — the per-application view of §4.2,
//! rendered as an ASCII objective-space plot plus the measured Pareto
//! front.
//!
//! ```sh
//! cargo run --release --example characterize -- knn
//! ```

use gpufreq::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "knn".to_string());
    let Some(w) = workload(&name) else {
        eprintln!("unknown workload `{name}`; available:");
        for w in all_workloads() {
            eprintln!("  {}", w.name);
        }
        std::process::exit(1);
    };
    let sim = Device::TitanX.simulator();
    let profile = w.profile();
    println!(
        "characterizing {} over all 177 configurations...\n",
        w.display_name
    );
    let c = sim.characterize(&profile);

    // ASCII objective-space scatter: x = speedup, y = normalized energy.
    const COLS: usize = 72;
    const ROWS: usize = 24;
    let (s_lo, s_hi) = (0.0, 1.4);
    let (e_lo, e_hi) = (0.4, 2.0);
    let mut grid = vec![vec![' '; COLS]; ROWS];
    for p in &c.points {
        let x = ((p.speedup - s_lo) / (s_hi - s_lo) * (COLS - 1) as f64).round();
        let y = ((p.norm_energy - e_lo) / (e_hi - e_lo) * (ROWS - 1) as f64).round();
        if (0.0..COLS as f64).contains(&x) && (0.0..ROWS as f64).contains(&y) {
            let glyph = match p.config().mem_mhz {
                3505 => 'H',
                3304 => 'h',
                810 => 'l',
                _ => 'L',
            };
            grid[ROWS - 1 - y as usize][x as usize] = glyph;
        }
    }
    // Mark the default configuration.
    let dx = ((1.0 - s_lo) / (s_hi - s_lo) * (COLS - 1) as f64).round() as usize;
    let dy = ((1.0 - e_lo) / (e_hi - e_lo) * (ROWS - 1) as f64).round() as usize;
    grid[ROWS - 1 - dy][dx] = '*';

    println!("normalized energy (top {e_hi:.1} .. bottom {e_lo:.1}); * = default config");
    for row in &grid {
        println!("|{}|", row.iter().collect::<String>());
    }
    println!("speedup {s_lo:.1} {}-> {s_hi:.1}", " ".repeat(COLS - 12));
    println!("glyphs: H=mem-3505 h=mem-3304 l=mem-810 L=mem-405\n");

    // The measured Pareto front.
    let objectives: Vec<Objectives> = c
        .points
        .iter()
        .map(|p| Objectives::new(p.speedup, p.norm_energy))
        .collect();
    let front_idx: Vec<usize> = gpufreq::pareto::pareto_set_simple(&objectives);
    println!(
        "measured Pareto front ({} of {} points):",
        front_idx.len(),
        c.points.len()
    );
    let mut front: Vec<_> = front_idx.iter().map(|&i| &c.points[i]).collect();
    front.sort_by(|a, b| a.speedup.partial_cmp(&b.speedup).unwrap());
    for p in front {
        println!(
            "  {}  speedup {:.3}  energy {:.3}  ({:.3} ms, {:.1} W)",
            p.config(),
            p.speedup,
            p.norm_energy,
            p.measurement.time_ms,
            p.measurement.avg_power_w
        );
    }
    println!(
        "\nsweep cost on real hardware would be ~{:.0} minutes (simulated wall clock)",
        c.sim_wall_s() / 60.0
    );
}
