//! Serving predictions: run an in-process `gpufreq-serve` daemon on an
//! ephemeral port, talk to it over the JSON-lines TCP protocol, and
//! shut it down cleanly — the whole request-path lifecycle in one
//! file.
//!
//! ```sh
//! cargo run --release --example serve_client
//! ```
//!
//! Against a real daemon (`gpufreq serve`) only the client half
//! applies; swap the ephemeral address for the daemon's.

use gpufreq::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Server half: train fast, bind an ephemeral port, serve. -----
    let planner = Planner::builder()
        .device(Device::TitanX)
        .corpus(Corpus::Fast)
        .settings(10)
        .model_config(ModelConfig::fast())
        .train()?;
    let server = Arc::new(Server::new(
        vec![planner],
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )?);
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    println!("serving titan-x predictions on {addr}");
    let daemon = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve(listener))
    };

    // --- Client half: one connection, a few requests, line by line. --
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut send = |request: &Request| -> Result<Response, Box<dyn std::error::Error>> {
        writeln!(writer, "{}", request.to_json())?;
        writer.flush()?;
        let mut line = String::new();
        reader.read_line(&mut line)?;
        Ok(Response::parse(line.trim())?)
    };

    let saxpy = "__kernel void saxpy(__global float* x, __global float* y, float a) {
        uint i = get_global_id(0);
        y[i] = a * x[i] + y[i];
    }";
    match send(&Request::predict(Device::TitanX, saxpy))? {
        Response::Predict { device, prediction } => {
            println!(
                "{device}: {} Pareto-optimal settings predicted",
                prediction.pareto_set.len()
            );
            if let Some(best) = prediction.max_speedup() {
                println!(
                    "  max speedup {:.3} at {}",
                    best.objectives.speedup, best.config
                );
            }
        }
        other => println!("unexpected answer: {other:?}"),
    }

    // The same kernel again: served from the front cache this time.
    send(&Request::predict(Device::TitanX, saxpy))?;
    // A malformed kernel is a typed per-request error, not a dropped
    // connection.
    if let Some(error) = send(&Request::predict(Device::TitanX, "int main() {}"))?.error() {
        println!("malformed kernel answered with: {error}");
    }
    if let Response::Stats { stats } = send(&Request::Stats)? {
        println!(
            "server stats: {} requests, front cache {}/{} hit/miss, p50 {}us",
            stats.requests.total,
            stats.front_cache.hits,
            stats.front_cache.misses,
            stats.latency_us.p50
        );
    }

    // --- Clean shutdown: the daemon drains and returns its summary. --
    send(&Request::Shutdown)?;
    let summary = daemon.join().expect("daemon thread")?;
    println!(
        "daemon exited after {} requests ({} cache hits)",
        summary.requests.total, summary.front_cache.hits
    );
    Ok(())
}
