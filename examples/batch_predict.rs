//! Batch prediction: plan frequency settings for a whole queue of
//! kernels in one call, with the engine fanning the work out across
//! cores and the shared [`ProfileCache`] analyzing each distinct
//! source exactly once.
//!
//! ```sh
//! cargo run --release --example batch_predict
//! ```
//!
//! The queue deliberately contains duplicates (a driver sees the same
//! kernels over and over) and one malformed source — which comes back
//! as a typed `Err` in its slot without disturbing its neighbours.

use gpufreq::prelude::*;

fn main() -> Result<(), Error> {
    // --- Train once through the facade (reduced corpus for speed). ----
    let planner = Planner::builder()
        .device(Device::TitanX)
        .corpus(Corpus::Fast)
        .settings(20)
        .model_config(ModelConfig::fast())
        .train()?;

    // --- A queue of kernel sources, duplicates and all. ---------------
    let workloads = all_workloads();
    let mut queue: Vec<&str> = workloads.iter().map(|w| w.source.as_str()).collect();
    let repeat_from = queue.len();
    queue.extend(
        workloads
            .iter()
            .take(6)
            .map(|w| w.source.as_str())
            .collect::<Vec<_>>(),
    );
    queue.push("__kernel void broken("); // a malformed straggler

    // --- One call: engine-parallel, cache-deduplicated. ----------------
    let results = planner.predict_batch(&queue);
    for (i, result) in results.iter().enumerate() {
        let label = workloads
            .get(i % workloads.len())
            .map(|w| w.display_name)
            .filter(|_| i < queue.len() - 1)
            .unwrap_or("broken");
        match result {
            Ok(prediction) => {
                let best = prediction
                    .pareto_set
                    .iter()
                    .max_by(|a, b| a.objectives.speedup.total_cmp(&b.objectives.speedup))
                    .expect("non-empty Pareto set");
                println!(
                    "{label:<16} {:2} Pareto points; max speedup {:.3} at {}",
                    prediction.pareto_set.len(),
                    best.objectives.speedup,
                    best.config
                );
            }
            Err(e) => println!("{label:<16} error: {e}"),
        }
    }

    // --- The cache did the deduplication. ------------------------------
    let cache = planner.cache();
    println!(
        "\n{} sources in the queue, {} analyzed, {} served from cache",
        queue.len(),
        cache.len(),
        cache.hits()
    );
    // However the workers race, only the distinct valid sources end up
    // stored (the malformed straggler is never cached).
    assert_eq!(cache.len(), repeat_from);
    assert_eq!(cache.hits() + cache.misses(), queue.len());

    // Slot i of the batch is exactly predict_source(queue[i]).
    let spot = planner.predict_source(queue[0])?;
    assert_eq!(results[0].as_ref().unwrap(), &spot);
    Ok(())
}
