//! Vendored mini-rand.
//!
//! The build container has no crates.io access, so this crate provides
//! the slice of the rand 0.8 API the workspace uses: `rngs::SmallRng`
//! seeded via `SeedableRng::seed_from_u64`, and `Rng::gen_range` /
//! `Rng::gen_bool` / `Rng::gen` over integer and float ranges. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! across platforms, which the test suite relies on.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits at a time.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The `Standard` distribution for `gen()`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Uniform in [0, 1) with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce one uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_u64(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(uniform_u64(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_int_range!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64
);

/// Uniform integer in [0, span) via Lemire-style widening multiply.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up onto the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = lo + (hi - lo) * u;
                if v > hi { hi } else { v }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family real rand 0.8 uses for SmallRng
    /// on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            // SplitMix64 expansion, as rand_core does.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = a.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            assert_eq!(x, b.gen_range(0.25..0.75));
            let k: usize = a.gen_range(3..=7);
            assert!((3..=7).contains(&k));
            let _ = b.gen_range(3..=7usize);
        }
    }

    #[test]
    fn covers_inclusive_endpoints_eventually() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..=2usize)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }
}
