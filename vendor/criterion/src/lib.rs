//! Vendored mini-criterion.
//!
//! Provides the subset of criterion 0.5's API this workspace's benches
//! use — `Criterion`, `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`, `black_box` — backed by a
//! simple wall-clock runner: warm up briefly, then time batches until
//! the measurement window closes, and print mean ns/iter. Statistical
//! analysis, plots, and baselines are intentionally out of scope.

use std::fmt::{self, Display};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// True when invoked by `cargo bench` (cargo passes `--bench`); false
/// under `cargo test`, where each benchmark runs exactly once as a
/// smoke test — the same behavior real criterion has.
pub fn full_measurement_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--bench"))
}

/// Top-level bench configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, measurement, warm_up) =
            (self.sample_size, self.measurement_time, self.warm_up_time);
        run_one(name, sample_size, measurement, warm_up, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(
            &label,
            sample_size,
            self.criterion.measurement_time,
            self.criterion.warm_up_time,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { text: s }
    }
}

/// Passed to the bench closure; `iter` runs and times the payload.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One timed pass to size batches, then measure until the budget
        // is spent.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        if !full_measurement_mode() {
            self.iters_done = 1;
            self.elapsed = once;
            return;
        }
        let batch =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut iters = 1u64;
        let mut elapsed = once;
        while elapsed < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            elapsed += t.elapsed();
            iters += batch;
        }
        self.iters_done = iters;
        self.elapsed = elapsed;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    _sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    f: &mut F,
) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        budget: warm_up,
    };
    // Warm-up pass (result discarded), then the measured pass.
    f(&mut b);
    b.budget = measurement;
    f(&mut b);
    if b.iters_done > 0 {
        let ns = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
        println!(
            "{label:<50} time: {:>12}/iter ({} iters)",
            format_ns(ns),
            b.iters_done
        );
    } else {
        println!("{label:<50} (no iterations recorded)");
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Defines a group of benchmark functions, with or without a custom
/// configuration — both criterion syntaxes are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness flags like --bench / --test passed by cargo.
            $( $group(); )+
        }
    };
}
