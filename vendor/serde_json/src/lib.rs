//! Vendored mini serde_json.
//!
//! Renders the mini-serde [`Value`] tree to JSON text and parses JSON
//! text back. Covers `to_string`, `to_string_pretty`, `from_str`,
//! [`Value`], and [`Error`] — the full surface this workspace uses.
//! Non-finite floats serialize as `null`, matching real serde_json.

pub use serde::Value;

use serde::{Deserialize, Number, Serialize};
use std::fmt;

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deserialize(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    use fmt::Write as _;
    match n {
        Number::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F64(v) if v.is_finite() => {
            // Rust's shortest-round-trip Display keeps exact f64 fidelity.
            if v == v.trunc() && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Nesting limit matching real serde_json's default recursion cap.
const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::new("recursion limit exceeded"));
        }
        let v = self.parse_value_inner();
        self.depth -= 1;
        v
    }

    fn parse_value_inner(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Value::Array(items)),
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Value::Object(entries)),
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{08}'),
                    Some(b'f') => s.push('\u{0c}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Surrogate pair handling.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| Error::new("invalid surrogate pair"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| Error::new("invalid \\u escape"))?
                        };
                        s.push(c);
                    }
                    other => {
                        return Err(Error::new(format!(
                            "invalid escape {:?}",
                            other.map(|b| b as char)
                        )))
                    }
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence that starts here.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::new("truncated UTF-8 in string"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(v)));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F64(v)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::F64(1.5))),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::String("x\"y\n\u{1F600}".into())),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let text = "[".repeat(100_000);
        assert!(from_str::<Value>(&text).is_err());
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(from_str::<Value>(&ok).is_ok());
    }

    #[test]
    fn invalid_surrogate_pairs_are_rejected() {
        // High surrogate followed by a non-low-surrogate escape.
        assert!(from_str::<String>("\"\\ud800\\u0041\"").is_err());
        // Lone low surrogate.
        assert!(from_str::<String>("\"\\udc00\"").is_err());
        // A valid pair decodes.
        let s: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "\u{1F600}");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123_456_789.123_456_78, -2.5e17] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(x, back);
        }
    }
}
