//! `#[derive(Serialize, Deserialize)]` for the vendored mini-serde.
//!
//! Supports exactly the shapes this workspace uses: non-generic structs
//! with named fields, unit structs, and non-generic enums whose
//! variants are unit, tuple, or struct-like. Anything else produces a
//! compile error naming the limitation.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input
//! token stream is walked by hand and the impl is emitted as a source
//! string parsed back into a `TokenStream`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Input {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kw = expect_ident(&tokens, &mut i)?;
    let name = expect_ident(&tokens, &mut i)?;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "mini-serde derive does not support generic type `{name}`"
        ));
    }

    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Input::Struct { name, fields })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input::UnitStruct { name }),
            _ => Err(format!(
                "mini-serde derive supports only named-field or unit structs (`{name}`)"
            )),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok(Input::Enum { name, variants })
            }
            _ => Err(format!("malformed enum `{name}`")),
        },
        other => Err(format!("mini-serde derive cannot handle `{other}`")),
    }
}

/// Skip any number of `#[...]` attributes, then `pub` / `pub(...)`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!("expected identifier, found {other:?}")),
    }
}

/// Skip one type (or expression) up to a top-level `,`, tracking `<...>`
/// nesting so commas inside generic arguments don't terminate early.
fn skip_to_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i)?;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_to_comma(&tokens, &mut i);
        i += 1; // the comma itself (or one past the end)
        fields.push(Field { name });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i)?;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant, then the trailing comma.
        skip_to_comma(&tokens, &mut i);
        i += 1;
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut n = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        skip_to_comma(&tokens, &mut i);
        i += 1;
        n += 1;
    }
    n
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let mut body = String::from("let mut entries = ::std::vec::Vec::new();\n");
            for f in fields {
                body.push_str(&format!(
                    "entries.push((::std::string::String::from({n:?}), ::serde::Serialize::serialize(&self.{n})));\n",
                    n = f.name
                ));
            }
            body.push_str("::serde::Value::Object(entries)");
            wrap_serialize(name, &body)
        }
        Input::UnitStruct { name } => {
            wrap_serialize(name, "::serde::Value::Object(::std::vec::Vec::new())")
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from({vn:?})),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize(f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(::std::string::String::from({vn:?}), {payload})]),\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({n:?}), ::serde::Serialize::serialize({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(::std::string::String::from({vn:?}), ::serde::Value::Object(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                }
            }
            wrap_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn wrap_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    fn serialize(&self) -> ::serde::Value {{\n{body}\n    }}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let mut body = format!("let entries = ::serde::expect_object(value, {name:?})?;\n");
            body.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                body.push_str(&format!(
                    "    {n}: ::serde::field(entries, {n:?}, {name:?})?,\n",
                    n = f.name
                ));
            }
            body.push_str("})");
            wrap_deserialize(name, &body)
        }
        Input::UnitStruct { name } => wrap_deserialize(
            name,
            &format!("let _ = value; ::std::result::Result::Ok({name})"),
        ),
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        if *n == 1 {
                            data_arms.push_str(&format!(
                                "{vn:?} => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(payload)?)),\n"
                            ));
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::deserialize(&items[{k}])?"))
                                .collect();
                            data_arms.push_str(&format!(
                                "{vn:?} => {{\n    let items = ::serde::expect_tuple(payload, {n}, {name:?})?;\n    ::std::result::Result::Ok({name}::{vn}({items}))\n}}\n",
                                items = items.join(", ")
                            ));
                        }
                    }
                    VariantKind::Struct(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{n}: ::serde::field(entries, {n:?}, {name:?})?",
                                    n = f.name
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "{vn:?} => {{\n    let entries = ::serde::expect_object(payload, {name:?})?;\n    ::std::result::Result::Ok({name}::{vn} {{ {items} }})\n}}\n",
                            items = items.join(", ")
                        ));
                    }
                }
            }
            let body = format!(
                "match ::serde::expect_enum(value, {name:?})? {{\n\
                 ::serde::EnumShape::Unit(tag) => match tag {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n}},\n\
                 ::serde::EnumShape::Data(tag, payload) => {{ let _ = &payload; match tag {{\n{data_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n}} }},\n}}"
            );
            wrap_deserialize(name, &body)
        }
    }
}

fn wrap_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n    fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n    }}\n}}\n"
    )
}
