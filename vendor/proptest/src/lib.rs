//! Vendored mini-proptest.
//!
//! Implements the slice of proptest's API this workspace's tests use:
//! the `proptest!` macro over `name in strategy` arguments,
//! `prop_assert!`/`prop_assert_eq!`, numeric range strategies, tuple
//! strategies, `prop::collection::vec`, and regex-literal string
//! strategies (character classes, escapes, `*`/`+`/`?`/`{m,n}`
//! quantifiers, and the `\PC` printable-char class).
//!
//! Cases are generated from a deterministic per-test RNG (seeded from
//! the test name), so failures reproduce across runs. Shrinking is not
//! implemented — the failing input is printed instead. The case count
//! defaults to 64 and is overridable via `PROPTEST_CASES`.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Number of cases each property runs.
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Per-block configuration, settable via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: usize,
}

impl ProptestConfig {
    pub fn with_cases(cases: usize) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: case_count(),
        }
    }
}

/// Deterministic RNG for test-case generation (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, bound).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in [0, 1).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A failed property case: carries the assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Value generators. Unlike real proptest there is no value tree or
/// shrinking: a strategy simply samples one value.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

// --- numeric ranges --------------------------------------------------------

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + (self.end - self.start) * rng.unit() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let v = lo + (hi - lo) * rng.unit() as $t;
                if v > hi { hi } else { v }
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

// --- tuples ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// --- Just ------------------------------------------------------------------

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- collections -----------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]: an exact count or a range.
    pub trait SizeRange {
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// --- regex-literal string strategies ---------------------------------------

/// One unit of a parsed pattern.
enum Atom {
    Literal(char),
    /// `[...]` — the set of allowed characters, expanded.
    Class(Vec<char>),
    /// `\PC` — any printable (non-control) character.
    Printable,
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// `&str` regex literals act as string strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for p in &pieces {
            let n = p.min + rng.below((p.max - p.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(sample_atom(&p.atom, rng));
            }
        }
        out
    }
}

/// Repetition cap for unbounded quantifiers (`*`, `+`).
const UNBOUNDED_CAP: usize = 64;

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces: Vec<Piece> = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('P') => {
                        // `\PC`: consume the category letter.
                        i += 1;
                        Atom::Printable
                    }
                    Some('n') => Atom::Literal('\n'),
                    Some('r') => Atom::Literal('\r'),
                    Some('t') => Atom::Literal('\t'),
                    Some(&c) => Atom::Literal(c),
                    None => panic!("trailing backslash in pattern {pattern:?}"),
                }
            }
            '[' => {
                let (set, end) = parse_class(&chars, i + 1, pattern);
                i = end;
                Atom::Class(set)
            }
            '.' => Atom::Printable,
            c @ ('(' | ')' | '|') => panic!(
                "unsupported regex construct `{c}` in pattern {pattern:?}: \
                 the vendored mini-proptest has no groups or alternation"
            ),
            c => Atom::Literal(c),
        };
        i += 1;
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                i += 1;
                (1, UNBOUNDED_CAP)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unclosed {{}} in pattern {pattern:?}"));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    assert!(
        chars.get(i) != Some(&'^'),
        "unsupported negated character class in pattern {pattern:?}: \
         the vendored mini-proptest only generates from positive classes"
    );
    let mut set = Vec::new();
    loop {
        match chars.get(i) {
            None => panic!("unclosed character class in pattern {pattern:?}"),
            Some(']') => return (set, i),
            Some('\\') => {
                i += 1;
                let c = match chars.get(i) {
                    Some('n') => '\n',
                    Some('r') => '\r',
                    Some('t') => '\t',
                    Some(&c) => c,
                    None => panic!("trailing backslash in class in {pattern:?}"),
                };
                set.push(c);
                i += 1;
            }
            Some(&lo) => {
                // Range `lo-hi` (a `-` not followed by a closing bracket).
                if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
                    let hi = chars[i + 2];
                    for cp in lo as u32..=hi as u32 {
                        if let Some(c) = char::from_u32(cp) {
                            set.push(c);
                        }
                    }
                    i += 3;
                } else {
                    set.push(lo);
                    i += 1;
                }
            }
        }
    }
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(set) => set[rng.below(set.len() as u64) as usize],
        Atom::Printable => {
            // Mostly ASCII printable, occasionally other printable
            // Unicode, to keep fuzz inputs interesting but valid.
            if rng.below(8) == 0 {
                const EXOTIC: &[char] = &[
                    'é', 'λ', 'Ω', '→', '√', '∞', '漢', 'ß', '¿', '\u{200B}', '𝕏', '🦀',
                ];
                EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
            } else {
                char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap()
            }
        }
    }
}

// --- the macros ------------------------------------------------------------

/// Defines property tests: each `#[test] fn name(arg in strategy, ..)`
/// becomes a normal test running `case_count()` sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)+
                let __snapshot = format!(
                    concat!($("    ", stringify!($arg), " = {:?}\n",)+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "property `{}` failed at case {}: {}\nwith inputs:\n{}",
                        stringify!($name), __case, e, __snapshot
                    );
                }
            }
        }
    )*};
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..$crate::case_count() {
                $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)+
                let __snapshot = format!(
                    concat!($("    ", stringify!($arg), " = {:?}\n",)+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "property `{}` failed at case {}: {}\nwith inputs:\n{}",
                        stringify!($name), __case, e, __snapshot
                    );
                }
            }
        }
    )*};
}

/// Assert within a property, reporting the failing inputs on error.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// The conventional glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};

    /// Mirror of proptest's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3i64..10, y in 0.5f64..1.5, k in 0u8..=2) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..1.5).contains(&y));
            prop_assert!(k <= 2);
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            points in prop::collection::vec((0.01f64..2.0, 0.01f64..2.0), 0..60)
        ) {
            prop_assert!(points.len() < 60);
            for (a, b) in &points {
                prop_assert!((0.01..2.0).contains(a), "a = {a}");
                prop_assert!((0.01..2.0).contains(b));
            }
        }

        #[test]
        fn regex_strategies_match_shape(
            s in "[a-c]{2,4}",
            t in "x[0-9]*",
            any in "\\PC*"
        ) {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(t.starts_with('x'));
            prop_assert!(t[1..].chars().all(|c| c.is_ascii_digit()));
            prop_assert!(any.chars().all(|c| !c.is_ascii_control()));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn alternation_is_rejected_not_silently_literal() {
        let mut rng = crate::TestRng::from_name("alt");
        let _ = "(ab|cd)+".sample(&mut rng);
    }

    #[test]
    #[should_panic(expected = "unsupported negated character class")]
    fn negated_class_is_rejected() {
        let mut rng = crate::TestRng::from_name("neg");
        let _ = "[^;]*".sample(&mut rng);
    }

    #[test]
    fn fixed_count_vec() {
        let mut rng = crate::TestRng::from_name("fixed");
        let v = prop::collection::vec(0.0f64..1.0, 4usize).sample(&mut rng);
        assert_eq!(v.len(), 4);
    }
}
