//! Vendored mini-serde.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors a small, self-contained replacement for the subset of serde
//! it actually uses: `#[derive(Serialize, Deserialize)]` on concrete
//! (non-generic) structs and enums, serialized through a JSON-shaped
//! [`Value`] tree. `serde_json` (also vendored) renders that tree to
//! text and parses it back.
//!
//! The data model intentionally mirrors serde_json's external tagging:
//!
//! * structs → objects keyed by field name,
//! * unit enum variants → `"Variant"`,
//! * newtype/tuple variants → `{"Variant": value}` / `{"Variant": [..]}`,
//! * struct variants → `{"Variant": {..}}`.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped value tree: the entire (de)serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered object, so serialized output is stable.
    Object(Vec<(String, Value)>),
}

/// Exact integer or floating-point number.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl Number {
    pub fn as_f64(self) -> f64 {
        match self {
            Number::I64(v) => v as f64,
            Number::U64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::I64(v) => Some(v),
            Number::U64(v) => i64::try_from(v).ok(),
            Number::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }

    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::I64(v) => u64::try_from(v).ok(),
            Number::U64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v >= 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }
}

/// Deserialization error: a human-readable path/expectation message.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Helpers used by the derive-generated code.
// ---------------------------------------------------------------------------

/// Fetch and deserialize one named field of a struct object.
pub fn field<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize(v).map_err(|e| Error::custom(format!("{ty}.{name}: {e}"))),
        None => Err(Error::custom(format!("missing field `{name}` in {ty}"))),
    }
}

/// View a value as a struct object, or error naming the expected type.
pub fn expect_object<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
    match v {
        Value::Object(entries) => Ok(entries),
        other => Err(Error::custom(format!(
            "expected object for {ty}, found {}",
            kind_name(other)
        ))),
    }
}

/// View a value as an externally-tagged enum: either a bare string
/// (unit variant) or a single-entry object (data variant).
pub enum EnumShape<'v> {
    Unit(&'v str),
    Data(&'v str, &'v Value),
}

pub fn expect_enum<'v>(v: &'v Value, ty: &str) -> Result<EnumShape<'v>, Error> {
    match v {
        Value::String(s) => Ok(EnumShape::Unit(s)),
        Value::Object(entries) if entries.len() == 1 => {
            Ok(EnumShape::Data(&entries[0].0, &entries[0].1))
        }
        other => Err(Error::custom(format!(
            "expected enum {ty} (string or single-key object), found {}",
            kind_name(other)
        ))),
    }
}

/// View a value as a tuple-variant payload of exactly `n` elements.
pub fn expect_tuple<'v>(v: &'v Value, n: usize, ty: &str) -> Result<&'v [Value], Error> {
    match v {
        Value::Array(items) if items.len() == n => Ok(items),
        Value::Array(items) => Err(Error::custom(format!(
            "expected {n} elements for {ty}, found {}",
            items.len()
        ))),
        other => Err(Error::custom(format!(
            "expected array for {ty}, found {}",
            kind_name(other)
        ))),
    }
}

pub fn kind_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

// ---------------------------------------------------------------------------
// Primitive / std impls.
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                kind_name(other)
            ))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        "expected integer, found {}",
                        kind_name(other)
                    ))),
                }
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        "expected integer, found {}",
                        kind_name(other)
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::F64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    // Non-finite floats serialize as null (as serde_json does).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!(
                        "expected number, found {}",
                        kind_name(other)
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<char, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-char string, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<String, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Box<T>, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<[T; N], Error> {
        let items = expect_tuple(v, N, "array")?;
        let parsed: Result<Vec<T>, Error> = items.iter().map(T::deserialize).collect();
        parsed.map(|vec| vec.try_into().expect("length checked by expect_tuple"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<($($name,)+), Error> {
                const N: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = expect_tuple(v, N, "tuple")?;
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<BTreeMap<String, V>, Error> {
        let entries = expect_object(v, "map")?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<HashMap<String, V>, Error> {
        let entries = expect_object(v, "map")?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}
