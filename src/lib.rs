//! `gpufreq` — a from-scratch Rust reproduction of *Predictable GPUs
//! Frequency Scaling for Energy and Performance* (Fan, Cosenza,
//! Juurlink — ICPP 2019, DOI 10.1145/3337821.3337833).
//!
//! The paper predicts, for a previously unseen OpenCL kernel, which
//! `(memory, core)` frequency configurations of a GPU are
//! Pareto-optimal with respect to speedup and normalized energy —
//! using only *static* code features, without ever executing the
//! kernel. This workspace implements the complete system plus every
//! substrate it needs:
//!
//! | crate | role |
//! |---|---|
//! | [`kernel`] | OpenCL-C-subset front-end + static feature extraction (the LLVM-pass analogue) |
//! | [`sim`] | deterministic GPU DVFS simulator with Titan X / P100 clock tables and an NVML facade |
//! | [`ml`] | ε-SVR via SMO, OLS/ridge/LASSO/polynomial baselines, scaling, metrics |
//! | [`pareto`] | dominance, Algorithm 1, fast fronts, hypervolume, extreme points |
//! | [`synth`] | the 106 pattern-based synthetic training micro-benchmarks |
//! | [`workloads`] | the 12 test benchmarks of the evaluation |
//! | [`core`] | the paper's contribution: training pipeline, two-headed model, Pareto prediction, evaluation |
//! | [`serve`] | long-lived prediction daemon: JSON-lines protocol over TCP/stdio, bounded queue + front cache |
//!
//! # Quickstart
//!
//! The typed entry point is the [`Planner`](core::Planner) façade:
//! pick a [`Device`](sim::Device), train, predict, persist — every
//! step returns a [`Result`](core::Result) with a workspace
//! [`Error`](core::Error) instead of panicking on malformed input.
//!
//! ```no_run
//! use gpufreq::prelude::*;
//!
//! # fn main() -> Result<(), gpufreq::core::Error> {
//! // Train on the synthetic corpus (Fig. 2).
//! let planner = Planner::builder()
//!     .device(Device::TitanX)
//!     .corpus(Corpus::Full)
//!     .settings(40)
//!     .train()?;
//!
//! // Predict the Pareto-optimal frequency settings of a new kernel (Fig. 3).
//! let kernel = gpufreq::workloads::workload("knn")
//!     .expect("knn is one of the twelve benchmarks");
//! let prediction = planner.predict(&kernel.static_features())?;
//! println!("{} Pareto-optimal settings predicted", prediction.pareto_set.len());
//!
//! // Persist a versioned, device-tagged artifact for later reuse.
//! planner.save("model.json")?;
//! # Ok(())
//! # }
//! ```
//!
//! The pre-redesign free functions (`build_training_data`,
//! `FreqScalingModel::train`, `predict_pareto`) remain re-exported
//! through the prelude for existing callers.

pub use gpufreq_core as core;
pub use gpufreq_kernel as kernel;
pub use gpufreq_ml as ml;
pub use gpufreq_pareto as pareto;
pub use gpufreq_serve as serve;
pub use gpufreq_sim as sim;
pub use gpufreq_synth as synth;
pub use gpufreq_workloads as workloads;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use gpufreq_core::{
        build_training_data, build_training_data_with, error_analysis, evaluate_all,
        evaluate_all_with, evaluate_workload, predict_pareto, table2, Corpus, Engine, Error,
        FreqScalingModel, ModelArtifact, ModelConfig, Objective, ParetoPrediction, Planner,
        ProfileCache, TrainedPlanner,
    };
    pub use gpufreq_kernel::{
        analyze_kernel, parse, FreqConfig, KernelProfile, LaunchConfig, StaticFeatures,
    };
    pub use gpufreq_ml::{Dataset, SvmKernel, SvrParams};
    pub use gpufreq_pareto::{pareto_front_simple, Objectives};
    pub use gpufreq_serve::{Request, Response, Server, ServerConfig, ServerStats};
    pub use gpufreq_sim::{Device, DeviceSpec, GpuSimulator, Measurement, NvmlDevice};
    pub use gpufreq_workloads::{all_workloads, workload, Workload};
}
