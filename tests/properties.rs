//! Property-based tests on the core invariants, spanning crates.

use gpufreq::prelude::*;
use gpufreq_kernel::{AnalysisConfig, KernelProfile};
use gpufreq_ml::MinMaxScaler;
use gpufreq_pareto::{
    hypervolume, pareto_set_fast, pareto_set_simple, Objectives, PAPER_REFERENCE,
};
use gpufreq_sim::{execution_time, KernelDemand};
use proptest::prelude::*;

proptest! {
    /// The lexer/parser never panic, whatever bytes arrive.
    #[test]
    fn parser_never_panics(src in "\\PC*") {
        let _ = parse(&src);
    }

    /// Parsing a syntactically plausible kernel skeleton never panics
    /// either (deeper grammar coverage than pure noise).
    #[test]
    fn parser_never_panics_on_kernel_shaped_input(
        body in "[a-z0-9 +*/=;()\\[\\]{}.<>&|-]{0,200}"
    ) {
        let src = format!("__kernel void k(__global float* x) {{ {body} }}");
        let _ = parse(&src);
    }

    /// Algorithm 1 and the O(n log n) front always agree.
    #[test]
    fn pareto_algorithms_agree(
        points in prop::collection::vec((0.01f64..2.0, 0.01f64..2.0), 0..60)
    ) {
        let objs: Vec<Objectives> =
            points.iter().map(|&(s, e)| Objectives::new(s, e)).collect();
        let mut a = pareto_set_simple(&objs);
        let mut b = pareto_set_fast(&objs);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Every front is mutually non-dominating and dominates-or-equals
    /// every input point.
    #[test]
    fn front_dominates_input(
        points in prop::collection::vec((0.01f64..2.0, 0.01f64..2.0), 1..60)
    ) {
        let objs: Vec<Objectives> =
            points.iter().map(|&(s, e)| Objectives::new(s, e)).collect();
        let front: Vec<Objectives> =
            pareto_set_simple(&objs).into_iter().map(|i| objs[i]).collect();
        prop_assert!(!front.is_empty());
        for f in &front {
            for g in &front {
                prop_assert!(!f.dominates(g));
            }
        }
        for p in &objs {
            prop_assert!(
                front.iter().any(|f| f.dominates(p) || f == p),
                "point {p:?} neither dominated nor on the front"
            );
        }
    }

    /// Hypervolume never decreases when a point is added.
    #[test]
    fn hypervolume_monotone(
        points in prop::collection::vec((0.01f64..1.9, 0.01f64..1.9), 1..30),
        extra in (0.01f64..1.9, 0.01f64..1.9)
    ) {
        let mut objs: Vec<Objectives> =
            points.iter().map(|&(s, e)| Objectives::new(s, e)).collect();
        let before = hypervolume(&objs, PAPER_REFERENCE);
        objs.push(Objectives::new(extra.0, extra.1));
        let after = hypervolume(&objs, PAPER_REFERENCE);
        prop_assert!(after + 1e-12 >= before);
    }

    /// Min-max scaling maps training rows into the unit cube and
    /// inverts exactly.
    #[test]
    fn scaler_round_trips(
        rows in prop::collection::vec(
            prop::collection::vec(-1e3f64..1e3, 4),
            2..40
        )
    ) {
        let scaler = MinMaxScaler::fit(&rows);
        for row in &rows {
            let t = scaler.transform(row);
            for v in &t {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(v), "scaled value {v}");
            }
            let back = scaler.inverse(&t);
            for (a, b) in row.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
            }
        }
    }

    /// Simulator sanity over arbitrary instruction mixes: execution
    /// time is positive and non-increasing in the core clock.
    #[test]
    fn sim_time_monotone_in_core_clock(
        int_ops in 0u32..64,
        float_ops in 0u32..64,
        sf_ops in 0u32..16,
        loads in 1u32..16,
    ) {
        let mut body = String::new();
        for k in 0..int_ops { body.push_str(&format!("    v = v + {};\n", k % 5 + 1)); }
        for _ in 0..float_ops { body.push_str("    f = f * 1.01f;\n"); }
        for _ in 0..sf_ops { body.push_str("    f = sin(f);\n"); }
        for k in 0..loads { body.push_str(&format!("    f = f + x[(i + {k}u) & 1023u];\n")); }
        let src = format!(
            "__kernel void k(__global float* x) {{
                uint i = get_global_id(0);
                float f = x[i & 1023u];
                int v = (int)i;
                {body}
                x[i & 1023u] = f + (float)v;
            }}"
        );
        let program = parse(&src).unwrap();
        let profile = KernelProfile::from_kernel(
            program.first_kernel().unwrap(),
            &AnalysisConfig::default(),
            LaunchConfig::new(1 << 18, 256),
        ).unwrap();
        let sim = GpuSimulator::titan_x();
        let demand = KernelDemand::from_profile(sim.spec(), &profile);
        let mut prev = f64::INFINITY;
        for cfg in sim.spec().clocks.actual_configs_for(3505) {
            let t = execution_time(sim.spec(), &demand, cfg);
            prop_assert!(t.total_s > 0.0);
            prop_assert!(t.total_s <= prev * (1.0 + 1e-12));
            prev = t.total_s;
        }
    }

    /// Static features of any generated straight-line kernel are a
    /// valid sub-distribution (non-negative, summing to at most 1).
    #[test]
    fn features_form_subdistribution(
        float_ops in 0u32..32,
        int_ops in 0u32..32,
    ) {
        let mut body = String::new();
        for _ in 0..float_ops { body.push_str("    f = f + 0.5f;\n"); }
        for _ in 0..int_ops { body.push_str("    v = v * 3;\n"); }
        let src = format!(
            "__kernel void k(__global float* x) {{
                uint i = get_global_id(0);
                float f = x[i];
                int v = (int)i;
                {body}
                x[i] = f + (float)v;
            }}"
        );
        let program = parse(&src).unwrap();
        let analysis = analyze_kernel(program.first_kernel().unwrap()).unwrap();
        let features = StaticFeatures::from_analysis(&analysis);
        for v in features.values() {
            prop_assert!(*v >= 0.0);
        }
        prop_assert!(features.sum() <= 1.0 + 1e-12);
        prop_assert!(features.sum() > 0.0);
    }

    /// Measurements normalize consistently: speedup and normalized
    /// energy at the default configuration are exactly 1.
    #[test]
    fn baseline_normalization_invariant(seed in 0usize..12) {
        let w = &all_workloads()[seed];
        let sim = GpuSimulator::titan_x();
        let c = sim.characterize_at(&w.profile(), &[sim.spec().clocks.default]);
        prop_assert!((c.points[0].speedup - 1.0).abs() < 1e-12);
        prop_assert!((c.points[0].norm_energy - 1.0).abs() < 1e-12);
    }
}
