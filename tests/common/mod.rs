//! Shared harness for the router integration tests: one fast-trained
//! planner per test binary, backend daemons and routers spun up on
//! free ports, and a line-protocol shutdown helper.
//!
//! Everything here runs real TCP on loopback — the same code paths CI's
//! `router-smoke` job drives from the outside.

#![allow(dead_code)] // each test binary uses its own subset

use gpufreq_core::{Corpus, ModelConfig, Planner, TrainedPlanner};
use gpufreq_ml::SvrParams;
use gpufreq_router::{BackendSpec, Router, RouterConfig, RouterSnapshot};
use gpufreq_serve::codec::LineClient;
use gpufreq_serve::{Request, Server, ServerConfig, ServerStats};
use std::net::{SocketAddr, TcpListener};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The shared reduced-corpus planner (training is the expensive part;
/// every backend in a test binary replicates this one model).
pub fn planner() -> TrainedPlanner {
    static PLANNER: OnceLock<TrainedPlanner> = OnceLock::new();
    PLANNER
        .get_or_init(|| {
            let relaxed = ModelConfig {
                speedup: SvrParams {
                    c: 10.0,
                    max_iter: 100_000,
                    ..SvrParams::paper_speedup()
                },
                energy: SvrParams {
                    c: 10.0,
                    max_iter: 100_000,
                    ..SvrParams::paper_energy()
                },
            };
            Planner::builder()
                .corpus(Corpus::Fast)
                .settings(6)
                .model_config(relaxed)
                .train()
                .expect("training the shared test planner")
        })
        .clone()
}

/// A backend daemon running on its own thread.
pub struct BackendHandle {
    pub addr: SocketAddr,
    pub server: Arc<Server>,
    pub thread: JoinHandle<ServerStats>,
}

/// Spin up one backend daemon (a replica of the shared planner) on a
/// free port.
pub fn spawn_backend() -> BackendHandle {
    spawn_backend_on(TcpListener::bind("127.0.0.1:0").expect("binding a backend port"))
}

/// Open a log-everything trace log (threshold 0) writing to `sink`.
pub fn trace_log(sink: &std::path::Path) -> Arc<gpufreq_obs::TraceLog> {
    Arc::new(
        gpufreq_obs::TraceLog::open(sink.to_str().expect("utf-8 sink path"), 0)
            .expect("opening a trace log"),
    )
}

/// [`spawn_backend`], with a log-everything trace log attached.
pub fn spawn_backend_traced(sink: &std::path::Path) -> BackendHandle {
    let listener = TcpListener::bind("127.0.0.1:0").expect("binding a backend port");
    spawn_backend_inner(listener, Some(trace_log(sink)))
}

/// Spin up a backend on an already-bound listener — the chaos test
/// rebinds a killed backend's old port this way.
pub fn spawn_backend_on(listener: TcpListener) -> BackendHandle {
    spawn_backend_inner(listener, None)
}

fn spawn_backend_inner(
    listener: TcpListener,
    log: Option<Arc<gpufreq_obs::TraceLog>>,
) -> BackendHandle {
    let mut server = Server::new(
        vec![planner()],
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("building a backend server");
    if let Some(log) = log {
        server.set_trace_log(log);
    }
    let server = Arc::new(server);
    let addr = listener.local_addr().expect("backend local addr");
    let thread = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve(listener).expect("backend serve loop"))
    };
    BackendHandle {
        addr,
        server,
        thread,
    }
}

/// A router running on its own thread.
pub struct RouterHandle {
    pub addr: SocketAddr,
    pub router: Arc<Router>,
    pub thread: JoinHandle<RouterSnapshot>,
}

/// A router config fronting `backends`, with device sets discovered
/// from the backends themselves and breaker timings tightened so tests
/// observe open/close transitions in milliseconds, not seconds.
pub fn test_router_config(backends: &[SocketAddr]) -> RouterConfig {
    let mut config = RouterConfig::default();
    for addr in backends {
        config.backends.push(BackendSpec {
            addr: addr.to_string(),
            devices: Vec::new(),
        });
    }
    config.failure_threshold = 2;
    config.cooldown = Duration::from_millis(100);
    config.probe_interval = Duration::from_millis(50);
    config
}

/// Build and serve a router on a free port.
pub fn spawn_router(config: RouterConfig) -> RouterHandle {
    spawn_router_inner(config, None)
}

/// [`spawn_router`], with a log-everything trace log attached.
pub fn spawn_router_traced(config: RouterConfig, sink: &std::path::Path) -> RouterHandle {
    spawn_router_inner(config, Some(trace_log(sink)))
}

fn spawn_router_inner(
    config: RouterConfig,
    log: Option<Arc<gpufreq_obs::TraceLog>>,
) -> RouterHandle {
    let mut router = match Router::new(config) {
        Ok(router) => router,
        Err(e) => panic!("building the router: {e}"),
    };
    if let Some(log) = log {
        router.set_trace_log(log);
    }
    let router = Arc::new(router);
    let listener = TcpListener::bind("127.0.0.1:0").expect("binding the router port");
    let addr = listener.local_addr().expect("router local addr");
    let thread = {
        let router = Arc::clone(&router);
        std::thread::spawn(move || router.serve(listener).expect("router serve loop"))
    };
    RouterHandle {
        addr,
        router,
        thread,
    }
}

/// Connect to `addr` and return the line client.
pub fn connect(addr: SocketAddr) -> LineClient {
    LineClient::connect(&addr.to_string()).expect("connecting")
}

/// Send a clean `shutdown` to a daemon or router and return its
/// acknowledgement line.
pub fn shutdown(addr: SocketAddr) -> String {
    let mut client = connect(addr);
    client
        .request(&Request::Shutdown)
        .expect("shutdown acknowledgement")
}

/// Poll `what` until it returns true or `timeout` elapses.
pub fn wait_for(timeout: Duration, what: impl Fn() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if what() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}
