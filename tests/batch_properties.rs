//! Property tests for the batch-prediction engine: [`ProfileCache`]
//! invariants and the `predict_batch` ⇔ `predict_source` contract.

use gpufreq_core::{Corpus, Engine, ModelConfig, Planner, ProfileCache, TrainedPlanner};
use gpufreq_sim::Device;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Deterministic kernel source with a tunable instruction mix — every
/// distinct `(float_ops, int_ops, stride)` triple is a distinct source
/// string, every equal triple an identical one.
fn kernel_source(float_ops: u32, int_ops: u32, stride: u32) -> String {
    let mut body = String::new();
    for _ in 0..float_ops {
        body.push_str("    f = f * 1.5f + 0.25f;\n");
    }
    for k in 0..int_ops {
        body.push_str(&format!("    v = v + {};\n", k % 7 + 1));
    }
    format!(
        "__kernel void k(__global float* x) {{
            uint i = get_global_id(0);
            float f = x[(i * {stride}u) & 1023u];
            int v = (int)i;
{body}            x[i & 1023u] = f + (float)v;
        }}"
    )
}

/// One planner for the whole file: trained once (fast corpus, relaxed
/// solver), shared by every property case.
fn planner() -> &'static TrainedPlanner {
    static PLANNER: OnceLock<TrainedPlanner> = OnceLock::new();
    PLANNER.get_or_init(|| {
        Planner::builder()
            .device(Device::TitanX)
            .corpus(Corpus::Fast)
            .settings(8)
            .model_config(ModelConfig::relaxed())
            .train()
            .expect("fast corpus trains")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same source ⇒ same features and same profile, wherever the
    /// analysis runs: a fresh analysis, a cache miss, and a cache hit
    /// all agree.
    #[test]
    fn cache_same_source_same_features(
        float_ops in 0u32..24,
        int_ops in 0u32..24,
        stride in 1u32..8,
    ) {
        let source = kernel_source(float_ops, int_ops, stride);
        let direct = gpufreq_core::analyze_source(&source, None).unwrap();
        let cache = ProfileCache::new();
        let miss = cache.analyze(&source).unwrap();
        let hit = cache.analyze(&source).unwrap();
        prop_assert_eq!(&miss.0, &direct.0);
        prop_assert_eq!(&hit.0, &direct.0);
        prop_assert_eq!(&miss.1, &direct.1);
        prop_assert_eq!(&hit.1, &direct.1);
        prop_assert_eq!(cache.len(), 1);
    }

    /// Hit/miss counters are monotone over any interleaving of sources
    /// (some repeated, some malformed), hits only grow on repeats, and
    /// `hits + misses` equals the number of calls.
    #[test]
    fn cache_hit_count_is_monotone(
        picks in prop::collection::vec((0usize..6, 0u32..3), 1..40)
    ) {
        let cache = ProfileCache::new();
        let (mut last_hits, mut last_misses) = (0usize, 0usize);
        let mut seen: Vec<u64> = Vec::new();
        for (i, &(variant, stride)) in picks.iter().enumerate() {
            // Variant 5 is a malformed source; the rest are valid
            // kernels distinguished by their instruction mix.
            let result = if variant == 5 {
                cache.analyze("this is not a kernel").map(|_| ())
            } else {
                cache
                    .analyze(&kernel_source(variant as u32, 2, stride + 1))
                    .map(|_| ())
            };
            prop_assert_eq!(result.is_err(), variant == 5);
            let (hits, misses) = (cache.hits(), cache.misses());
            prop_assert!(hits >= last_hits, "hits went backwards");
            prop_assert!(misses >= last_misses, "misses went backwards");
            prop_assert_eq!(hits + misses, i + 1);
            let key = (variant as u64) << 32 | stride as u64;
            if variant != 5 && seen.contains(&key) {
                prop_assert_eq!(hits, last_hits + 1);
            }
            seen.push(key);
            (last_hits, last_misses) = (hits, misses);
        }
        prop_assert!(cache.len() <= 5 * 3, "only distinct valid sources are stored");
    }

    /// `predict_batch` slot `i` is exactly `predict_source(sources[i])`
    /// — Ok and Err cases alike — for serial and parallel engines.
    #[test]
    fn predict_batch_matches_predict_source(
        mixes in prop::collection::vec((0u32..16, 0u32..16, 0u32..5), 1..10),
        jobs in 1usize..5,
    ) {
        let planner = planner().clone().with_jobs(Some(jobs));
        // stride 0 marks a malformed source slot.
        let sources: Vec<String> = mixes
            .iter()
            .map(|&(f, i, stride)| {
                if stride == 0 {
                    format!("void broken_{f}_{i}(")
                } else {
                    kernel_source(f, i, stride)
                }
            })
            .collect();
        // Owned `String`s go straight into the generic batch API.
        let batch = planner.predict_batch(&sources);
        prop_assert_eq!(batch.len(), sources.len());
        for (slot, source) in batch.iter().zip(&sources) {
            let single = planner.predict_source(source);
            match (slot, &single) {
                (Ok(b), Ok(s)) => prop_assert_eq!(b, s),
                (Err(b), Err(s)) => {
                    prop_assert_eq!(format!("{b}"), format!("{s}"))
                }
                _ => prop_assert!(
                    false,
                    "batch and single disagree on fallibility for {source:?}"
                ),
            }
        }
    }

    /// Batch prediction through any engine equals the serial engine's
    /// output (the engine only changes scheduling, never results).
    #[test]
    fn predict_batch_is_engine_invariant(
        seeds in prop::collection::vec(0u32..12, 1..8),
        jobs in 2usize..6,
    ) {
        let sources: Vec<String> = seeds
            .iter()
            .map(|&s| kernel_source(s, 11 - s.min(11), s % 3 + 1))
            .collect();
        let serial: Vec<_> = planner()
            .clone()
            .with_jobs(Some(1))
            .predict_batch(&sources)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let parallel: Vec<_> = planner()
            .clone()
            .with_jobs(Some(jobs))
            .predict_batch(&sources)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        prop_assert_eq!(parallel, serial);
    }
}

#[test]
fn engine_is_exported_and_defaults_sanely() {
    // The prelude-level contract the properties rely on.
    assert_eq!(Engine::serial().effective_jobs(100), 1);
    assert!(Engine::default().effective_jobs(100) >= 1);
}
