//! Chaos integration test for the router: kill a backend mid-load,
//! watch its circuit breaker open while the survivor absorbs the
//! traffic, restart the backend on the same port, and watch the
//! health probes close the circuit again — with zero malformed
//! responses end to end.

mod common;

use common::{
    shutdown, spawn_backend, spawn_backend_on, spawn_router, test_router_config, wait_for,
};
use gpufreq_router::route::replica_for;
use gpufreq_router::CircuitState;
use gpufreq_serve::{Request, Response};
use gpufreq_sim::Device;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

const SAXPY: &str = "__kernel void saxpy(__global float* x, __global float* y, float a) {
    uint i = get_global_id(0);
    y[i] = a * x[i] + y[i];
}";

/// The circuit state the router currently reports for `addr`.
fn circuit_of(router: &gpufreq_router::Router, addr: std::net::SocketAddr) -> CircuitState {
    router
        .snapshot()
        .backends
        .into_iter()
        .find(|b| b.addr == addr.to_string())
        .expect("backend missing from the router snapshot")
        .state
}

#[test]
fn a_killed_backend_opens_its_circuit_and_recovers_on_restart() {
    let survivor = spawn_backend();
    let victim = spawn_backend();
    let router = spawn_router(test_router_config(&[survivor.addr, victim.addr]));

    let stop = AtomicBool::new(false);
    let answered = AtomicU64::new(0);
    let malformed = AtomicU64::new(0);
    let revived = std::thread::scope(|scope| {
        // Background load: unique predicts through the router for the
        // whole chaos window. Every response must parse as the typed
        // protocol — a prediction or a typed error — no matter what
        // happens to the backends underneath.
        for t in 0..3u64 {
            let (stop, answered, malformed) = (&stop, &answered, &malformed);
            let addr = router.addr;
            scope.spawn(move || {
                let mut client = common::connect(addr);
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let request = Request::Predict {
                        device: "titan-x".to_string(),
                        source: format!("// chaos {t} {i}\n{SAXPY}"),
                    };
                    i += 1;
                    let Ok(response) = client.request(&request) else {
                        // The router never drops an accepted
                        // connection mid-request.
                        malformed.fetch_add(1, Ordering::Relaxed);
                        return;
                    };
                    answered.fetch_add(1, Ordering::Relaxed);
                    if Response::parse(&response).is_err() {
                        malformed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        // Let the mix warm up, then kill the victim mid-load.
        assert!(
            wait_for(Duration::from_secs(10), || {
                answered.load(Ordering::Relaxed) >= 20
            }),
            "load never got going"
        );
        shutdown(victim.addr);
        let victim_summary = victim.thread.join().expect("victim thread");
        assert!(victim_summary.requests.total >= 1);

        // The router notices: failed calls and probes trip the
        // victim's breaker open while the survivor stays closed.
        assert!(
            wait_for(Duration::from_secs(10), || {
                circuit_of(&router.router, victim.addr) == CircuitState::Open
            }),
            "the victim's circuit never opened: {:?}",
            router.router.snapshot()
        );
        assert_eq!(
            circuit_of(&router.router, survivor.addr),
            CircuitState::Closed
        );

        // Restart the backend on the *same* port (SO_REUSEADDR); the
        // health probes half-open the circuit and close it again.
        let listener = TcpListener::bind(victim.addr).expect("rebinding the victim's port");
        let revived = spawn_backend_on(listener);
        assert!(
            wait_for(Duration::from_secs(10), || {
                circuit_of(&router.router, victim.addr) == CircuitState::Closed
            }),
            "the victim's circuit never re-closed: {:?}",
            router.router.snapshot()
        );

        stop.store(true, Ordering::Relaxed);
        revived
    });

    // Zero malformed responses across the whole window, and the
    // survivor genuinely absorbed traffic while the victim was down.
    assert_eq!(
        malformed.load(Ordering::Relaxed),
        0,
        "malformed responses under chaos"
    );
    assert!(answered.load(Ordering::Relaxed) >= 20);

    // With the circuit closed again, kernels owned by the revived
    // replica are served by it again: send predicts that hash to it
    // and check they succeed through the router.
    let mut client = common::connect(router.addr);
    let mut routed_to_revived = 0u64;
    for i in 0..64 {
        let source = format!("// recovery {i}\n{SAXPY}");
        // Backends are [survivor, victim] in config order, so the
        // revived replica is index 1.
        if replica_for(Device::TitanX, &source, 2) == 1 {
            routed_to_revived += 1;
            let response = client
                .request(&Request::Predict {
                    device: "titan-x".to_string(),
                    source,
                })
                .expect("post-recovery predict");
            assert!(
                response.starts_with("{\"ok\":\"predict\""),
                "post-recovery predict failed: {response}"
            );
        }
    }
    assert!(
        routed_to_revived > 0,
        "no recovery kernel hashed to the revived replica"
    );

    shutdown(router.addr);
    let snapshot = router.thread.join().expect("router thread");
    assert!(snapshot.counters.routed >= 20);
    shutdown(survivor.addr);
    survivor.thread.join().expect("survivor thread");
    // Draining the revived backend proves the recovery predicts really
    // landed on it (probes are `devices` ops, not predicts).
    shutdown(revived.addr);
    let revived_summary = revived.thread.join().expect("revived thread");
    assert!(
        revived_summary.requests.predict >= routed_to_revived,
        "the revived backend served {} predict(s), expected at least {routed_to_revived}",
        revived_summary.requests.predict
    );
}
