//! Integration test: driving the NVML-style facade the way the paper's
//! measurement harness drives the real library (§4.1).

use gpufreq::prelude::*;
use gpufreq_kernel::FreqConfig;
use gpufreq_sim::NvmlError;

fn device() -> NvmlDevice {
    NvmlDevice::new(DeviceSpec::titan_x())
}

#[test]
fn full_measurement_walkthrough() {
    // The paper's harness: enumerate supported clocks, pin each
    // combination, run the kernel, poll power, reset.
    let nvml = device();
    let profile = workload("kmeans").unwrap().profile();
    nvml.set_active_workload(Some(profile));
    let mut visited = 0;
    for mem in nvml.device_get_supported_memory_clocks() {
        let cores = nvml.device_get_supported_graphics_clocks(mem).unwrap();
        // Pin the extremes of every domain like the sampled sweep does.
        for &core in [cores.first(), cores.last()].into_iter().flatten() {
            nvml.device_set_applications_clocks(mem, core).unwrap();
            let applied = nvml.device_get_applications_clocks();
            assert_eq!(applied.mem_mhz, mem);
            assert!(applied.core_mhz <= core, "clamp may only lower the clock");
            let mw = nvml.device_get_power_usage();
            assert!(mw > 30_000, "implausible busy power {mw} mW");
            visited += 1;
        }
    }
    assert_eq!(visited, 8);
    nvml.device_reset_applications_clocks();
    assert_eq!(
        nvml.device_get_applications_clocks(),
        FreqConfig::new(3505, 1001)
    );
}

#[test]
fn gray_point_quirk_matches_fig4() {
    // Every advertised clock above 1202 MHz must apply as 1202 (the
    // gray points of Fig. 4a), for each of the three upper domains.
    let nvml = device();
    for mem in [810u32, 3304, 3505] {
        let advertised = nvml.device_get_supported_graphics_clocks(mem).unwrap();
        let grays: Vec<u32> = advertised.iter().copied().filter(|&c| c > 1202).collect();
        assert!(!grays.is_empty(), "mem {mem} advertises no gray points");
        for c in grays {
            nvml.device_set_applications_clocks(mem, c).unwrap();
            assert_eq!(nvml.device_get_applications_clocks().core_mhz, 1202);
        }
    }
}

#[test]
fn mem_l_has_no_high_clocks() {
    let nvml = device();
    let advertised = nvml.device_get_supported_graphics_clocks(405).unwrap();
    assert_eq!(advertised.len(), 6);
    assert_eq!(*advertised.last().unwrap(), 405);
    assert_eq!(
        nvml.device_set_applications_clocks(405, 1001),
        Err(NvmlError::InvalidArgument)
    );
}

#[test]
fn idle_power_tracks_applied_clocks() {
    let nvml = device();
    nvml.set_active_workload(None);
    nvml.device_set_applications_clocks(3505, 1202).unwrap();
    let hi = nvml.device_get_power_usage();
    nvml.device_set_applications_clocks(810, 135).unwrap();
    let lo = nvml.device_get_power_usage();
    assert!(
        hi > lo,
        "idle power must fall with both clocks: {hi} <= {lo}"
    );
}

#[test]
fn power_sampling_rate_supports_short_kernel_protocol() {
    // A kernel finishing in ~1 ms yields no usable samples at 62.5 Hz;
    // the measurement protocol must repeat it until statistically
    // consistent. Verify through the simulator's sensor accounting.
    let sim = GpuSimulator::titan_x();
    let profile = workload("mt").unwrap().profile(); // sub-ms kernel
    let m = sim.run_default(&profile);
    assert!(
        m.time_ms < 2.0,
        "expected a short kernel, got {} ms",
        m.time_ms
    );
    assert!(
        m.runs > 100,
        "short kernels must be repeated, got {} runs",
        m.runs
    );
    assert!(m.samples >= 64, "not enough power samples: {}", m.samples);
}
