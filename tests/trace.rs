//! End-to-end tracing integration: a trace id minted at the client
//! edge must ride the wire through the router to a backend, come back
//! attached to the response, and appear in **both** processes'
//! structured trace logs — the cross-process correlation the whole
//! feature exists for.
//!
//! Runs real TCP on loopback via the shared harness, with both
//! processes' trace logs opened at threshold 0 (log everything).

mod common;

use common::{shutdown, spawn_backend_traced, spawn_router_traced, test_router_config};
use gpufreq_obs::trace;
use gpufreq_serve::Request;

/// A unique-per-run sink path (the logs are opened in append mode, so
/// a fixed path could satisfy assertions with a previous run's lines).
fn sink(tag: &str, run: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("gpufreq-trace-test");
    std::fs::create_dir_all(&dir).expect("creating the trace-log dir");
    dir.join(format!("{tag}-{run}.jsonl"))
}

#[test]
fn a_trace_id_is_echoed_and_lands_in_both_router_and_backend_logs() {
    // The run id doubles as the trace id: minted, so fresh every run.
    let trace_id = trace::mint();
    let backend_sink = sink("backend", &trace_id);
    let router_sink = sink("router", &trace_id);

    let backend = spawn_backend_traced(&backend_sink);
    let router = spawn_router_traced(test_router_config(&[backend.addr]), &router_sink);

    let mut client = common::connect(router.addr);

    // An untraced request stays untraced: no `"trace"` in the reply.
    let devices = Request::Devices.to_json();
    let untraced = client.call(&devices).expect("untraced devices");
    assert!(
        !untraced.contains("\"trace\""),
        "untraced exchange grew a trace field: {untraced}"
    );

    // The traced predict: attach at the edge, expect the echo.
    let predict = Request::Predict {
        device: "titan-x".to_string(),
        source: "__kernel void k(__global float* x) { x[get_global_id(0)] = 1.0f; }".to_string(),
    }
    .to_json();
    let reply = client
        .call(&trace::attach(&predict, &trace_id))
        .expect("traced predict");
    assert!(
        reply.starts_with("{\"ok\":\"predict\""),
        "traced predict failed: {reply}"
    );
    assert_eq!(
        trace::extract(&reply),
        Some(trace_id.as_str()),
        "the trace id was not echoed: {reply}"
    );

    // A traced batch exercises the split/merge path's detach-reattach.
    let batch = Request::PredictBatch {
        device: "titan-x".to_string(),
        sources: vec![
            "__kernel void a(__global float* x) { x[0] = 2.0f; }".to_string(),
            "not OpenCL at all".to_string(),
        ],
    }
    .to_json();
    let reply = client
        .call(&trace::attach(&batch, &trace_id))
        .expect("traced batch");
    assert!(
        reply.starts_with("{\"ok\":\"predict_batch\""),
        "traced batch failed: {reply}"
    );
    assert_eq!(
        trace::extract(&reply),
        Some(trace_id.as_str()),
        "the batch trace id was not echoed: {reply}"
    );

    drop(client);
    shutdown(router.addr);
    router.thread.join().expect("router thread");
    shutdown(backend.addr);
    backend.thread.join().expect("backend thread");

    // Both logs must carry the id — same trace, two components. Every
    // record is one JSON line with the component name and a stages map.
    for (path, component) in [(&router_sink, "router"), (&backend_sink, "serve")] {
        let contents =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let hits: Vec<&str> = contents
            .lines()
            .filter(|l| l.contains(&format!("\"trace\":\"{trace_id}\"")))
            .collect();
        assert!(
            !hits.is_empty(),
            "{component} log has no record for trace {trace_id}:\n{contents}"
        );
        for line in hits {
            assert!(
                line.contains(&format!("\"component\":\"{component}\"")),
                "{component} log record misattributed: {line}"
            );
            assert!(
                line.contains("\"stages\":{"),
                "{component} log record has no stage breakdown: {line}"
            );
        }
    }
    std::fs::remove_file(&backend_sink).ok();
    std::fs::remove_file(&router_sink).ok();
}
