//! End-to-end integration tests: the full train → predict → evaluate
//! pipeline across all workspace crates, with reproduction quality
//! gates on a reduced (fast) training corpus.

use gpufreq::prelude::*;
use gpufreq_core::{
    build_training_data, evaluate_all, predict_pareto, FreqScalingModel, ModelConfig,
};
use gpufreq_ml::SvrParams;
use std::sync::OnceLock;

/// One shared reduced-corpus model for all tests in this file (training
/// is the expensive part; the assertions are cheap).
fn setup() -> &'static (GpuSimulator, FreqScalingModel) {
    static SETUP: OnceLock<(GpuSimulator, FreqScalingModel)> = OnceLock::new();
    SETUP.get_or_init(|| {
        let sim = GpuSimulator::titan_x();
        let corpus: Vec<_> = gpufreq::synth::generate_all()
            .into_iter()
            .step_by(2)
            .collect();
        let data = build_training_data(&sim, &corpus, 28);
        let config = ModelConfig {
            speedup: SvrParams {
                c: 100.0,
                ..SvrParams::paper_speedup()
            },
            energy: SvrParams {
                c: 100.0,
                ..SvrParams::paper_energy()
            },
        };
        let model = FreqScalingModel::train(&data, &config);
        (sim, model)
    })
}

#[test]
fn pipeline_trains_on_reduced_corpus() {
    let (_, model) = setup();
    assert_eq!(model.trained_on(), 53 * 28);
    let (sv_s, sv_e) = model.support_vectors();
    assert!(
        sv_s > 10 && sv_e > 10,
        "degenerate models: {sv_s}/{sv_e} SVs"
    );
}

#[test]
fn speedup_predictions_track_ground_truth_at_high_memory() {
    // The paper's Fig. 6 headline: mem-H speedup errors are small.
    let (sim, model) = setup();
    let evals = evaluate_all(sim, model, &all_workloads());
    let analysis =
        gpufreq_core::error_analysis(sim, model, &evals, gpufreq_core::Objective::Speedup);
    let mem_h = &analysis[0];
    assert_eq!(mem_h.label, "Mem_H");
    // The reduced test corpus is weaker than the paper-scale run
    // (which achieves ~11%); gate on staying in the same regime.
    assert!(
        mem_h.rmse_percent < 30.0,
        "mem-H speedup RMSE {:.1}% is far above the paper's regime",
        mem_h.rmse_percent
    );
}

#[test]
fn low_memory_domains_are_harder_to_predict() {
    // §4.3-4.4: the two lowest memory domains have distinctly larger
    // errors than the two highest — the observation that motivates the
    // mem-L heuristic.
    let (sim, model) = setup();
    let evals = evaluate_all(sim, model, &all_workloads());
    for objective in [
        gpufreq_core::Objective::Speedup,
        gpufreq_core::Objective::Energy,
    ] {
        let analysis = gpufreq_core::error_analysis(sim, model, &evals, objective);
        let high = analysis[0].rmse_percent.min(analysis[1].rmse_percent);
        let low = analysis[2].rmse_percent.max(analysis[3].rmse_percent);
        assert!(
            low > high,
            "{objective:?}: low-memory RMSE {low:.1}% should exceed high-memory {high:.1}%"
        );
    }
}

#[test]
fn predicted_pareto_sets_are_reasonable() {
    let (sim, model) = setup();
    let evals = evaluate_all(sim, model, &all_workloads());
    assert_eq!(evals.len(), 12);
    for eval in &evals {
        // Paper Table 2: predicted sets have ~9-12 points, real ~6-14.
        let p = eval.prediction.pareto_set.len();
        assert!(
            (2..=40).contains(&p),
            "{}: implausible predicted-set size {p}",
            eval.name
        );
        assert!(eval.coverage_d >= 0.0);
        assert!(
            eval.coverage_d < 0.5,
            "{}: coverage D {:.3}",
            eval.name,
            eval.coverage_d
        );
    }
    // The paper's bottom line: good approximations for most benchmarks
    // (the paper-scale model achieves 10/12 at D <= 0.0362; the reduced
    // corpus used here is noisier).
    let good = evals.iter().filter(|e| e.coverage_d <= 0.1).count();
    assert!(
        good >= 8,
        "only {good}/12 benchmarks with good Pareto approximation"
    );
}

#[test]
fn predicted_sets_discover_improvements_over_default() {
    // Headline claim: the model discovers configurations that beat the
    // default in either energy or performance (within a small loss in
    // the other objective).
    let (sim, model) = setup();
    let evals = evaluate_all(sim, model, &all_workloads());
    let improving = evals.iter().filter(|e| e.offers_trade_off(0.05)).count();
    assert!(
        improving >= 8,
        "predicted sets offer energy/performance trade-offs for only {improving}/12 benchmarks"
    );
}

#[test]
fn prediction_is_purely_static() {
    // The prediction phase must not execute the kernel: predicting for
    // a syntactically valid kernel that would be pathological to run
    // (huge trip counts) completes instantly.
    let (sim, model) = setup();
    let source = "__kernel void pathological(__global float* x) {
        uint i = get_global_id(0);
        float v = x[i];
        for (int a = 0; a < 1000000; a += 1) {
            for (int b = 0; b < 1000000; b += 1) {
                v = v * 1.0000001f + 0.000001f;
            }
        }
        x[i] = v;
    }";
    let program = parse(source).unwrap();
    let analysis = analyze_kernel(program.first_kernel().unwrap()).unwrap();
    let features = StaticFeatures::from_analysis(&analysis);
    let start = std::time::Instant::now();
    let prediction = predict_pareto(model, &features, &sim.spec().clocks);
    assert!(!prediction.pareto_set.is_empty());
    assert!(
        start.elapsed().as_secs() < 5,
        "prediction must not execute the kernel"
    );
}

#[test]
fn model_persists_and_reloads_through_facade() {
    let (sim, model) = setup();
    let json = model.to_json();
    let reloaded = FreqScalingModel::from_json(&json).unwrap();
    let f = workload("convolution").unwrap().static_features();
    let cfg = sim.spec().clocks.default;
    assert_eq!(
        model.predict_objectives(&f, cfg),
        reloaded.predict_objectives(&f, cfg)
    );
}

#[test]
fn facade_wraps_the_same_pipeline() {
    // The Planner façade must be a pure repackaging of the free
    // functions: wrapping the shared model in an artifact and
    // predicting through TrainedPlanner gives bit-identical results.
    let (sim, model) = setup();
    let planner = TrainedPlanner::from_artifact(ModelArtifact::new(Device::TitanX, model.clone()));
    assert_eq!(planner.device(), Device::TitanX);
    let f = workload("knn").unwrap().static_features();
    let via_facade = planner.predict(&f).unwrap();
    let via_free_fn = predict_pareto(model, &f, &sim.spec().clocks);
    assert_eq!(via_facade, via_free_fn);

    // And the persisted artifact round-trips through save/load.
    let dir = std::env::temp_dir().join("gpufreq-e2e-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("facade.json");
    planner.save(&path).unwrap();
    let reloaded = TrainedPlanner::load(&path).unwrap();
    assert_eq!(reloaded.predict(&f).unwrap(), via_facade);
}

#[test]
fn portability_same_model_predicts_on_p100() {
    // §4.1 notes the methodology is portable; the model trained on the
    // Titan X feature space can score P100 configurations (a single
    // memory domain).
    let (_, model) = setup();
    let p100 = GpuSimulator::tesla_p100();
    let f = workload("knn").unwrap().static_features();
    let prediction = predict_pareto(model, &f, &p100.spec().clocks);
    assert!(!prediction.pareto_set.is_empty());
    assert!(prediction
        .pareto_set
        .iter()
        .all(|p| p.config.mem_mhz == 715));
}
