//! Determinism harness: every parallel path must be bit-identical to
//! its serial twin.
//!
//! The execution engine merges worker results by index, so training,
//! evaluation, cross-validation and batch prediction are specified to
//! produce the same bytes for `--jobs 1` and `--jobs 4` (and any other
//! worker count) — this suite pins that contract at the artifact-JSON
//! and Table 2 level, the representations that get persisted and
//! compared across machines.

use gpufreq_core::{
    build_training_data_with, evaluate_all_with, leave_one_pattern_out_with, table2, table2_csv,
    Corpus, Engine, FreqScalingModel, ModelConfig, Planner, TrainedPlanner,
};
use gpufreq_sim::{Device, GpuSimulator};
use gpufreq_synth::MicroBenchmark;

/// The shared test-suite solver preset: fast enough for CI, same code
/// path as the paper parameters.
fn fast_config() -> ModelConfig {
    ModelConfig::relaxed()
}

fn small_corpus() -> Vec<MicroBenchmark> {
    gpufreq_synth::generate_all()
        .into_iter()
        .step_by(5)
        .collect()
}

fn train_planner(jobs: usize) -> TrainedPlanner {
    Planner::builder()
        .device(Device::TitanX)
        .corpus(Corpus::Fast)
        .settings(8)
        .model_config(fast_config())
        .jobs(Some(jobs))
        .train()
        .expect("fast corpus trains")
}

#[test]
fn training_artifact_json_is_identical_serial_vs_parallel() {
    let serial = train_planner(1);
    let parallel = train_planner(4);
    assert_eq!(
        serial.artifact().to_json(),
        parallel.artifact().to_json(),
        "--jobs 4 must persist byte-identical model artifacts to --jobs 1"
    );
}

#[test]
fn training_data_is_identical_for_every_worker_count() {
    let sim = GpuSimulator::titan_x();
    let corpus = small_corpus();
    let serial = build_training_data_with(&Engine::serial(), &sim, &corpus, 6);
    for jobs in [2, 4, 16] {
        let parallel = build_training_data_with(&Engine::new(Some(jobs)), &sim, &corpus, 6);
        assert_eq!(parallel, serial, "jobs = {jobs}");
    }
}

#[test]
fn evaluate_all_and_table2_are_identical_serial_vs_parallel() {
    let sim = GpuSimulator::titan_x();
    let data = build_training_data_with(&Engine::default(), &sim, &small_corpus(), 8);
    let model = FreqScalingModel::try_train_with(&Engine::default(), &data, &fast_config())
        .expect("corpus is non-empty");
    let workloads = gpufreq_workloads::all_workloads();
    let serial = evaluate_all_with(&Engine::serial(), &sim, &model, &workloads);
    let parallel = evaluate_all_with(&Engine::new(Some(4)), &sim, &model, &workloads);
    assert_eq!(parallel, serial, "full evaluations must match");
    // And the level users diff: rendered Table 2 rows, byte for byte.
    assert_eq!(table2_csv(&table2(&parallel)), table2_csv(&table2(&serial)));
}

#[test]
fn cross_validation_is_identical_serial_vs_parallel() {
    let sim = GpuSimulator::titan_x();
    // Three pattern families x three intensities: three folds.
    let corpus: Vec<MicroBenchmark> = gpufreq_synth::generate_all()
        .into_iter()
        .filter(|b| {
            ["b-int-add-", "b-float-mul-", "b-gl-access-"]
                .iter()
                .any(|p| b.name.starts_with(p))
        })
        .filter(|b| b.name.ends_with("-4") || b.name.ends_with("-32") || b.name.ends_with("-256"))
        .collect();
    let serial = leave_one_pattern_out_with(&Engine::serial(), &sim, &corpus, 8, &fast_config());
    let parallel =
        leave_one_pattern_out_with(&Engine::new(Some(4)), &sim, &corpus, 8, &fast_config());
    assert_eq!(parallel, serial);
    assert_eq!(
        serde_json::to_string(&parallel).unwrap(),
        serde_json::to_string(&serial).unwrap(),
        "per-fold JSON must be byte-identical"
    );
}

#[test]
fn predict_batch_is_identical_serial_vs_parallel() {
    let planner = train_planner(2);
    // Owned `String` sources straight into the generic batch API — no
    // borrow slice to rebuild.
    let sources: Vec<String> = gpufreq_workloads::all_workloads()
        .iter()
        .map(|w| w.source.clone())
        .collect();
    let serial: Vec<_> = planner
        .clone()
        .with_jobs(Some(1))
        .predict_batch(&sources)
        .into_iter()
        .map(|r| r.expect("workload kernels analyze"))
        .collect();
    let parallel: Vec<_> = planner
        .with_jobs(Some(4))
        .predict_batch(&sources)
        .into_iter()
        .map(|r| r.expect("workload kernels analyze"))
        .collect();
    assert_eq!(parallel, serial);
}

#[test]
fn serve_responses_are_identical_at_any_worker_count() {
    // The serving-side twin of the engine contract: replaying one
    // recorded request stream through `gpufreq-serve` must produce
    // byte-identical response bodies at any worker count — including
    // the error responses, the post-shutdown drain, and with the
    // front cache disabled entirely (the cache may only change
    // wall-clock, never bytes).
    use gpufreq_serve::{Request, Server, ServerConfig};
    use gpufreq_sim::Device as Dev;

    let planner = train_planner(2);
    let workloads = gpufreq_workloads::all_workloads();
    let mut stream_lines: Vec<String> = Vec::new();
    // Every workload once, the first three repeated (cache hits on
    // the second pass), one batch mixing a malformed slot in.
    for w in &workloads {
        stream_lines.push(Request::predict(Dev::TitanX, w.source.clone()).to_json());
    }
    for w in workloads.iter().take(3) {
        stream_lines.push(Request::predict(Dev::TitanX, w.source.clone()).to_json());
    }
    stream_lines.push(
        Request::predict_batch(
            Dev::TitanX,
            vec![
                workloads[0].source.clone(),
                "__kernel void broken(".to_string(),
                workloads[1].source.clone(),
            ],
        )
        .to_json(),
    );
    stream_lines.push(Request::Devices.to_json());
    stream_lines.push("{ this is not json".to_string());
    stream_lines.push(
        Request::Predict {
            device: "gtx-9000".into(),
            source: workloads[0].source.clone(),
        }
        .to_json(),
    );
    stream_lines.push(
        Request::Predict {
            device: Dev::TeslaP100.id().into(), // registered, not served
            source: workloads[0].source.clone(),
        }
        .to_json(),
    );
    stream_lines.push(Request::Shutdown.to_json());
    // Post-shutdown requests drain deterministically.
    stream_lines.push(Request::Devices.to_json());
    let stream = stream_lines.join("\n");

    let run = |workers: usize, cache_capacity: usize| -> String {
        let server = Server::new(
            vec![planner.clone()],
            ServerConfig {
                workers,
                queue_capacity: 64,
                cache_capacity,
                cache_shards: 2,
                analysis_cache_capacity: 8,
                ..ServerConfig::default()
            },
        )
        .expect("one planner serves");
        let mut out = Vec::new();
        server
            .serve_lines(stream.as_bytes(), &mut out)
            .expect("in-memory serving cannot fail");
        String::from_utf8(out).expect("responses are UTF-8")
    };

    let serial = run(1, 16);
    assert_eq!(
        serial.lines().count(),
        stream_lines.len(),
        "every request answered exactly once"
    );
    for workers in [2, 4] {
        assert_eq!(
            run(workers, 16),
            serial,
            "response bodies must not depend on the worker count ({workers})"
        );
    }
    assert_eq!(
        run(4, 0),
        serial,
        "the front cache must never change response bytes"
    );
}

#[test]
fn reproduction_report_is_identical_serial_vs_parallel() {
    // The report subsystem aggregates every engine-routed pipeline
    // (training, evaluation, error analysis, on two devices), so its
    // rendered documents are the widest determinism surface there is:
    // `gpufreq report --fast --jobs 1` and `--jobs 4` must write
    // byte-identical REPRODUCTION.md / reproduction.json.
    use gpufreq_bench::report::{generate, render, ReportOptions};
    let report = |jobs: usize| {
        generate(&ReportOptions {
            full: false,
            jobs: Some(jobs),
            git_revision: None,
        })
        .expect("fast report generates")
    };
    let serial = report(1);
    let parallel = report(4);
    assert_eq!(
        render::render_markdown(&serial),
        render::render_markdown(&parallel),
        "REPRODUCTION.md must not depend on --jobs"
    );
    assert_eq!(
        render::render_json(&serial),
        render::render_json(&parallel),
        "reproduction.json must not depend on --jobs"
    );
}

#[test]
fn train_all_devices_is_identical_serial_vs_parallel() {
    let build = |jobs: usize| {
        Planner::builder()
            .corpus(Corpus::Fast)
            .settings(6)
            .model_config(fast_config())
            .jobs(Some(jobs))
            .train_all_devices()
            .expect("fast corpus trains on every device")
    };
    let serial = build(1);
    let parallel = build(3);
    assert_eq!(serial.len(), Device::all().len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.device(), p.device());
        assert_eq!(
            s.artifact().to_json(),
            p.artifact().to_json(),
            "device {}",
            s.device()
        );
    }
}
