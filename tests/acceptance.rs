//! Record/replay acceptance harness: a pinned wire trace replayed
//! byte-for-byte against a daemon **and** against a router fronting
//! two replicas of the same model.
//!
//! The trace (`tests/acceptance/serve.jsonl`, the format written by
//! `gpufreq client --record`) pins every response byte: protocol
//! serialization, prediction formatting, error bodies, batch slot
//! order. The same file passing against both targets is the router's
//! core contract — clients cannot tell a router from a daemon.
//!
//! When the protocol or the model legitimately changes, re-bless with:
//!
//! ```text
//! GPUFREQ_BLESS=1 cargo test --test acceptance
//! ```
//!
//! and commit the rewritten trace.

mod common;

use common::{shutdown, spawn_backend, spawn_router, test_router_config};
use gpufreq_obs::trace;
use gpufreq_serve::codec::{parse_trace, TraceEntry};
use gpufreq_serve::Request;

const TRACE_PATH: &str = "tests/acceptance/serve.jsonl";

const SAXPY: &str = "__kernel void saxpy(__global float* x, __global float* y, float a) {
    uint i = get_global_id(0);
    y[i] = a * x[i] + y[i];
}";

const REDUCE: &str = "__kernel void reduce(__global float* x, __global float* out) {
    uint i = get_global_id(0);
    out[0] += x[i] * x[i];
}";

/// The recorded request script, as raw wire lines. Deterministic —
/// every run (and every bless) sends exactly these bytes in order.
fn script() -> Vec<String> {
    let predict = |device: &str, source: &str| {
        Request::Predict {
            device: device.to_string(),
            source: source.to_string(),
        }
        .to_json()
    };
    let batch = |sources: &[&str]| {
        Request::PredictBatch {
            device: "titan-x".to_string(),
            sources: sources.iter().map(|s| s.to_string()).collect(),
        }
        .to_json()
    };
    vec![
        // Inventory first — pins the DeviceInfo serialization.
        Request::Devices.to_json(),
        // The cold predict and its warm (front-cache) repeat must
        // answer identical bytes.
        predict("titan-x", SAXPY),
        predict("titan-x", SAXPY),
        // Typed errors: unknown device, registered-but-unserved
        // device, unparseable kernel.
        predict("gtx-9000", SAXPY),
        predict("tesla-p100", SAXPY),
        predict("titan-x", "this is not OpenCL"),
        // Batches: split-merged by the router (mixed ok/error slots),
        // single-source, and empty.
        batch(&[SAXPY, "also not OpenCL", REDUCE, SAXPY]),
        batch(&[REDUCE]),
        batch(&[]),
        // A malformed line gets the parser's typed bad_request.
        "predict saxpy please".to_string(),
    ]
}

/// Replay `entries` against `addr` on one connection, diffing each
/// response byte-for-byte.
fn replay(addr: std::net::SocketAddr, entries: &[TraceEntry], target: &str) {
    let mut client = common::connect(addr);
    for (i, entry) in entries.iter().enumerate() {
        let response = client
            .call(&entry.send)
            .unwrap_or_else(|e| panic!("{target}: trace entry {i}: {e}"));
        assert_eq!(
            response, entry.recv,
            "{target}: trace entry {i} diverged from the pinned trace \
             (request: {}); if the change is intended, re-bless with \
             GPUFREQ_BLESS=1",
            entry.send
        );
    }
}

#[test]
fn pinned_trace_replays_byte_identically_against_daemon_and_router() {
    let backends = [spawn_backend(), spawn_backend()];
    let router = spawn_router(test_router_config(&[backends[0].addr, backends[1].addr]));

    if std::env::var("GPUFREQ_BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        // Record the script against a bare daemon — the daemon is the
        // source of truth the router must match.
        let mut client = common::connect(backends[0].addr);
        let mut blessed = String::from(
            "# Pinned wire trace: recorded against `gpufreq serve`, replayed\n\
             # against daemon and router by tests/acceptance.rs. Re-bless with\n\
             # GPUFREQ_BLESS=1 cargo test --test acceptance\n",
        );
        for send in script() {
            let recv = client.call(&send).expect("blessing the trace");
            blessed.push_str(&TraceEntry { send, recv }.to_json());
            blessed.push('\n');
        }
        std::fs::create_dir_all("tests/acceptance").unwrap();
        std::fs::write(TRACE_PATH, blessed).unwrap();
    }

    let contents = std::fs::read_to_string(TRACE_PATH).unwrap_or_else(|e| {
        panic!("{TRACE_PATH}: {e}; record it with GPUFREQ_BLESS=1 cargo test --test acceptance")
    });
    let entries = parse_trace(&contents).expect("parsing the pinned trace");

    // The pinned requests must match the in-code script — otherwise the
    // trace pins a stale conversation and needs re-blessing.
    let sends: Vec<&str> = entries.iter().map(|e| e.send.as_str()).collect();
    let expected = script();
    assert_eq!(
        sends,
        expected.iter().map(String::as_str).collect::<Vec<_>>(),
        "the pinned trace's requests drifted from the script; re-bless \
         with GPUFREQ_BLESS=1"
    );

    // Byte-identical replays: daemon first (self-consistency incl. the
    // warm cache), then the router (the scale-out contract). The same
    // backend also absorbs the bless traffic, so the replay exercises
    // warm-cache byte-stability too.
    replay(backends[0].addr, &entries, "daemon");
    replay(router.addr, &entries, "router");
    // And the router answer is stable across a second pass (warm
    // connection pools, closed circuits).
    replay(router.addr, &entries, "router (second pass)");

    shutdown(router.addr);
    router.thread.join().expect("router thread");
    for backend in backends {
        shutdown(backend.addr);
        backend.thread.join().expect("backend thread");
    }
}

/// Tracing is strictly additive on the wire: replaying the pinned
/// script with a trace id attached to each request must answer the
/// **pinned bytes plus exactly the echoed trace field** — nothing else
/// may move. (The untraced test above already pins that responses
/// without a trace are byte-identical to the pre-tracing wire.)
#[test]
fn traced_replay_answers_the_pinned_bytes_plus_the_echoed_trace() {
    let backends = [spawn_backend(), spawn_backend()];
    let router = spawn_router(test_router_config(&[backends[0].addr, backends[1].addr]));

    let contents = std::fs::read_to_string(TRACE_PATH).unwrap_or_else(|e| {
        panic!("{TRACE_PATH}: {e}; record it with GPUFREQ_BLESS=1 cargo test --test acceptance")
    });
    let entries = parse_trace(&contents).expect("parsing the pinned trace");

    for (target_name, addr) in [("daemon", backends[0].addr), ("router", router.addr)] {
        let mut client = common::connect(addr);
        for (i, entry) in entries.iter().enumerate() {
            // Deterministic per-entry ids — the diff message names them.
            let id = format!("{i:016x}");
            let sent = trace::attach(&entry.send, &id);
            // The malformed non-JSON line cannot carry a trace
            // (`attach` leaves it untouched); its response must then
            // stay untraced too — the pinned bytes exactly.
            let expect = if trace::extract(&sent) == Some(id.as_str()) {
                trace::attach(&entry.recv, &id)
            } else {
                entry.recv.clone()
            };
            let response = client
                .call(&sent)
                .unwrap_or_else(|e| panic!("{target_name}: traced entry {i}: {e}"));
            assert_eq!(
                response, expect,
                "{target_name}: traced entry {i} (trace {id}) diverged from \
                 pinned-bytes-plus-trace (request: {sent})"
            );
        }
    }

    shutdown(router.addr);
    router.thread.join().expect("router thread");
    for backend in backends {
        shutdown(backend.addr);
        backend.thread.join().expect("backend thread");
    }
}
