//! Property tests pinning the router's routing determinism and the
//! raw-byte batch merge, plus a live byte-identity check: a router
//! answers `predict_batch` with exactly the bytes a single daemon
//! would, for every replica count.

mod common;

use common::{shutdown, spawn_backend, spawn_router, test_router_config};
use gpufreq_router::route::{merge_batch, replica_for, split_batch, split_results};
use gpufreq_serve::Request;
use gpufreq_sim::Device;
use proptest::prelude::*;
use serde::Value;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replica assignment is a pure function of (device, source,
    /// replica count): stable across calls and interleavings, always
    /// in range, and degenerate cases (0/1 replicas) pin to 0.
    #[test]
    fn replica_assignment_is_pure_and_bounded(
        device_idx in 0usize..3,
        sources in prop::collection::vec("\\PC{0,80}", 1..20),
        replicas in 0usize..8,
    ) {
        let device = Device::all()[device_idx];
        let first: Vec<usize> =
            sources.iter().map(|s| replica_for(device, s, replicas)).collect();
        // Re-evaluate in reverse order — interleaving cannot matter.
        let again: Vec<usize> = sources
            .iter()
            .rev()
            .map(|s| replica_for(device, s, replicas))
            .rev()
            .collect();
        prop_assert_eq!(&first, &again);
        for &r in &first {
            if replicas <= 1 {
                prop_assert_eq!(r, 0);
            } else {
                prop_assert!(r < replicas);
            }
        }
    }

    /// `split_batch` partitions the request indices: every slot lands
    /// in exactly the bucket its source hashes to, in request order.
    #[test]
    fn batch_split_partitions_in_request_order(
        device_idx in 0usize..3,
        sources in prop::collection::vec("\\PC{0,80}", 0..24),
        replicas in 1usize..6,
    ) {
        let device = Device::all()[device_idx];
        let shards = split_batch(device, &sources, replicas);
        prop_assert_eq!(shards.len(), replicas.max(1));
        let mut seen = vec![false; sources.len()];
        for (replica, bucket) in shards.iter().enumerate() {
            let mut last = None;
            for &i in bucket {
                prop_assert!(i < sources.len());
                prop_assert!(!seen[i], "index {} in two buckets", i);
                seen[i] = true;
                prop_assert_eq!(replica_for(device, &sources[i], replicas), replica);
                prop_assert!(last.is_none_or(|p| p < i), "bucket out of order");
                last = Some(i);
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "index dropped by the split");
    }

    /// Merging arbitrary raw result slots and splitting the merged
    /// body returns the same slot bytes — the splice layer never
    /// re-serializes (or corrupts) a backend's result.
    #[test]
    fn batch_merge_round_trips_raw_slots(
        device_idx in 0usize..3,
        messages in prop::collection::vec("\\PC{0,60}", 0..12),
    ) {
        let device = Device::all()[device_idx];
        // Slots shaped like real backend results: a prediction-like
        // object or an error body whose message carries arbitrary
        // (JSON-escaped) text, including quotes, braces, commas.
        let slots: Vec<String> = messages
            .iter()
            .enumerate()
            .map(|(i, message)| {
                let value = if i % 2 == 0 {
                    Value::Object(vec![(
                        "prediction".to_string(),
                        Value::Object(vec![(
                            "pareto_set".to_string(),
                            Value::Array(vec![Value::String(message.clone())]),
                        )]),
                    )])
                } else {
                    Value::Object(vec![(
                        "error".to_string(),
                        Value::Object(vec![
                            ("code".to_string(), Value::String("parse".to_string())),
                            ("message".to_string(), Value::String(message.clone())),
                        ]),
                    )])
                };
                serde_json::to_string(&value).expect("slot serialization")
            })
            .collect();
        let borrowed: Vec<&str> = slots.iter().map(String::as_str).collect();
        let merged = merge_batch(device.id(), &borrowed);
        let split = split_results(&merged, device.id())
            .expect("a merged body must split back");
        prop_assert_eq!(split, borrowed);
    }
}

const SAXPY: &str = "__kernel void saxpy(__global float* x, __global float* y, float a) {
    uint i = get_global_id(0);
    y[i] = a * x[i] + y[i];
}";

/// Live byte-identity: for 1, 2, and 3 replicas, the router's
/// `predict_batch` response is byte-for-byte the single daemon's —
/// split, fan-out, and merge are invisible on the wire.
#[test]
fn router_batches_are_byte_identical_to_a_single_daemon_for_any_replica_count() {
    let backends = [spawn_backend(), spawn_backend(), spawn_backend()];
    let mut reference = common::connect(backends[0].addr);

    // Batches sized to split across replicas, with an error slot and a
    // duplicate (cache-hit) slot mixed in.
    let sources: Vec<String> = (0..9)
        .map(|i| match i {
            4 => "definitely not OpenCL".to_string(),
            7 => format!("// batch 1\n{SAXPY}"),
            _ => format!("// batch {i}\n{SAXPY}"),
        })
        .collect();
    let requests: Vec<String> = (1..=sources.len())
        .step_by(4)
        .map(|n| {
            Request::PredictBatch {
                device: "titan-x".to_string(),
                sources: sources[..n].to_vec(),
            }
            .to_json()
        })
        .collect();
    let expected: Vec<String> = requests
        .iter()
        .map(|line| reference.call(line).expect("daemon batch"))
        .collect();

    for replicas in 1..=backends.len() {
        let addrs: Vec<_> = backends[..replicas].iter().map(|b| b.addr).collect();
        let router = spawn_router(test_router_config(&addrs));
        let mut client = common::connect(router.addr);
        for (line, want) in requests.iter().zip(&expected) {
            let got = client.call(line).expect("router batch");
            assert_eq!(
                &got, want,
                "router response diverged from the daemon at {replicas} replica(s)"
            );
        }
        shutdown(router.addr);
        router.thread.join().expect("router thread");
    }

    for backend in backends {
        shutdown(backend.addr);
        backend.thread.join().expect("backend thread");
    }
}
